#![forbid(unsafe_code)]
//! Shared hand-rolled JSON reader/writer.
//!
//! The workspace is offline (no serde), so every JSON surface — the
//! `vdsms-lint --json` / `--format sarif` emitters, the lint summary
//! cache, and the robustness-floor parser in `vdsms-workload` — goes
//! through this one module so the reader and writer cannot drift.
//!
//! Guarantees:
//! - Objects preserve key order (a `Vec`, not a map), so output is
//!   byte-stable across runs given the same input.
//! - The writer emits integers without a fractional part whenever the
//!   value is integral and exactly representable, so `3` round-trips as
//!   `3`, not `3.0`.
//! - `parse(write(v)) == v` for every finite value this module can
//!   produce.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document. Trailing non-whitespace is an
    /// error.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor: an integer value.
    pub fn num(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// Serialize compactly (no whitespace). Deterministic: object key
    /// order is preserved as built.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation and a space after `:`.
    /// Deterministic for the same value.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, Some(2), 0);
        out
    }
}

/// Append `s` to `out` as a JSON string literal (quotes included).
/// Escapes `"` `\\`, the common control characters, and everything else
/// below 0x20 as `\u00XX`.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a quoted, escaped JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::new();
    escape_into(s, &mut out);
    out
}

/// Format a number the way the writer does: integral values in the
/// exactly-representable range print without a fractional part.
pub fn format_num(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the least-surprising spelling.
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_value(v: &Json, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => out.push_str(&format_num(*n)),
        Json::Str(s) => escape_into(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        // Fast path: a run of plain bytes closed by a quote needs one
        // validation and one allocation, no per-character loop.
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' || b == b'\\' {
                break;
            }
            self.pos += 1;
        }
        if self.peek() == Some(b'"') {
            let run = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| "invalid UTF-8")?;
            self.pos += 1;
            return Ok(run.to_string());
        }
        self.pos = start;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("unsupported escape '\\{}'", other as char))
                        }
                    }
                }
                Some(_) => {
                    // Consume a maximal run of plain bytes with a single
                    // UTF-8 validation. A multi-byte scalar can never
                    // contain a quote or backslash byte (continuation
                    // bytes are >= 0x80), so the byte-wise scan cannot
                    // split a character.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8")?;
                    out.push_str(run);
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Fast path: a short plain integer (the overwhelmingly common
        // case in cache entries — line/column positions and indices)
        // converts digit-by-digit without the f64 grammar.
        let int_start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let next = self.peek();
        if self.pos > int_start
            && self.pos - int_start <= 15
            && !matches!(next, Some(b'.' | b'e' | b'E'))
        {
            let mut n = 0i64;
            for &b in &self.bytes[int_start..self.pos] {
                n = n * 10 + i64::from(b - b'0');
            }
            if start < int_start {
                n = -n;
            }
            return Ok(Json::Num(n as f64));
        }
        self.pos = start;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

/// A strict sequential scanner over machine-written JSON.
///
/// [`Json::parse`] builds a full value tree — the right tool for
/// documents of unknown shape, but allocation-bound when the reader
/// already knows the exact layout (same writer, same key order). `Scan`
/// is the complement: the caller spells out the expected structure with
/// [`Scan::lit`] and pulls scalars with [`Scan::usize_`] /
/// [`Scan::bool_`] / [`Scan::string`]. Every method returns `Option`
/// and a failed `lit` restores the cursor, so callers can probe for
/// optional fields and treat any mismatch as "not this format" — the
/// lint summary cache falls back to the tree parser on `None`.
pub struct Scan<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scan<'a> {
    /// Start scanning `text` from the beginning.
    pub fn new(text: &'a str) -> Scan<'a> {
        Scan { bytes: text.as_bytes(), pos: 0 }
    }

    /// Expect the literal bytes of `t` next (no whitespace skipping:
    /// machine-written compact JSON has none). On mismatch the cursor
    /// is unchanged, so `lit` doubles as a probe for optional fields.
    pub fn lit(&mut self, t: &str) -> Option<()> {
        if self.bytes[self.pos..].starts_with(t.as_bytes()) {
            self.pos += t.len();
            Some(())
        } else {
            None
        }
    }

    /// True when the whole input has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Parse an unsigned decimal integer.
    pub fn usize_(&mut self) -> Option<usize> {
        let start = self.pos;
        let mut n = 0usize;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() {
                n = n.checked_mul(10)?.checked_add(usize::from(b - b'0'))?;
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos > start {
            Some(n)
        } else {
            None
        }
    }

    /// Parse `true` or `false`.
    pub fn bool_(&mut self) -> Option<bool> {
        if self.lit("true").is_some() {
            Some(true)
        } else if self.lit("false").is_some() {
            Some(false)
        } else {
            None
        }
    }

    /// Parse a quoted string with the writer's escape set decoded.
    pub fn string(&mut self) -> Option<String> {
        self.lit("\"")?;
        // Common case: no escapes — one validation, one allocation.
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' || b == b'\\' {
                break;
            }
            self.pos += 1;
        }
        let head = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        if self.lit("\"").is_some() {
            return Some(head.to_string());
        }
        let mut out = String::from(head);
        loop {
            match self.bytes.get(self.pos).copied() {
                Some(b'"') => {
                    self.pos += 1;
                    return Some(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied()?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return None,
                    }
                }
                Some(_) => {
                    let run_start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[run_start..self.pos]).ok()?);
                }
                None => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = match Json::parse(doc) {
            Ok(v) => v,
            Err(e) => panic!("parse failed: {e}"),
        };
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).and_then(|a| a[2].as_f64()),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\ny")
        );
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn object_preserves_key_order() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap_or(Json::Null);
        match v {
            Json::Obj(fields) => {
                assert_eq!(fields[0].0, "z");
                assert_eq!(fields[1].0, "a");
            }
            _ => panic!("not an object"),
        }
    }

    #[test]
    fn unicode_escape_decodes() {
        let v = Json::parse(r#""é""#).unwrap_or(Json::Null);
        assert_eq!(v.as_str(), Some("é"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a": }"#).is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn round_trips_the_committed_floor_shape() {
        let doc = r#"{
          "profiles": {
            "smoke": {
              "seed": 7,
              "floors": [
                {"attack": "speed-up", "strength": "medium", "detector": "seq",
                 "min_recall": 0.66, "min_precision": 0.9}
              ]
            }
          }
        }"#;
        let v = match Json::parse(doc) {
            Ok(v) => v,
            Err(e) => panic!("parse failed: {e}"),
        };
        let floors = v
            .get("profiles")
            .and_then(|p| p.get("smoke"))
            .and_then(|s| s.get("floors"))
            .and_then(Json::as_arr);
        let Some([first, ..]) = floors else { panic!("missing floors") };
        assert_eq!(first.get("attack").and_then(Json::as_str), Some("speed-up"));
        assert_eq!(first.get("min_recall").and_then(Json::as_f64), Some(0.66));
    }

    #[test]
    fn writer_is_byte_stable_and_round_trips() {
        let v = Json::Obj(vec![
            ("z".to_string(), Json::num(3)),
            ("a".to_string(), Json::Arr(vec![Json::Num(2.5), Json::str("x\n\"y")])),
            ("flag".to_string(), Json::Bool(true)),
            ("none".to_string(), Json::Null),
            ("empty".to_string(), Json::Obj(Vec::new())),
        ]);
        let compact = v.to_compact();
        assert_eq!(
            compact,
            r#"{"z":3,"a":[2.5,"x\n\"y"],"flag":true,"none":null,"empty":{}}"#
        );
        assert_eq!(Json::parse(&compact), Ok(v.clone()));
        let pretty = v.to_pretty();
        assert_eq!(Json::parse(&pretty), Ok(v));
        // Integral floats print without a fractional part.
        assert_eq!(Json::Num(3.0).to_compact(), "3");
        assert_eq!(Json::Num(-0.5).to_compact(), "-0.5");
    }

    #[test]
    fn pretty_layout_is_stable() {
        let v = Json::Obj(vec![(
            "items".to_string(),
            Json::Arr(vec![Json::num(1), Json::num(2)]),
        )]);
        assert_eq!(v.to_pretty(), "{\n  \"items\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn integer_helpers_reject_non_integers() {
        assert_eq!(Json::Num(3.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Num(42.0).as_usize(), Some(42));
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::Null.as_bool(), None);
    }

    #[test]
    fn scan_reads_what_the_writer_wrote() {
        let mut s = Scan::new("{\"n\":42,\"b\":true,\"s\":\"hi\"}");
        assert_eq!(s.lit("{\"n\":"), Some(()));
        assert_eq!(s.usize_(), Some(42));
        assert_eq!(s.lit(",\"b\":"), Some(()));
        assert_eq!(s.bool_(), Some(true));
        assert_eq!(s.lit(",\"s\":"), Some(()));
        assert_eq!(s.string().as_deref(), Some("hi"));
        assert_eq!(s.lit("}"), Some(()));
        assert!(s.at_end());
    }

    #[test]
    fn scan_lit_mismatch_leaves_the_cursor_for_a_retry() {
        let mut s = Scan::new("\"t\":1");
        assert_eq!(s.lit("\"e\":"), None);
        assert_eq!(s.lit("\"t\":"), Some(()));
        assert_eq!(s.usize_(), Some(1));
    }

    #[test]
    fn scan_string_decodes_the_writer_escape_set() {
        let original = "a\"b\\c\nd\re\tf\u{1}g — λ";
        let escaped = escape(original);
        let mut s = Scan::new(&escaped);
        assert_eq!(s.string().as_deref(), Some(original));
        assert!(s.at_end());
    }

    #[test]
    fn scan_rejects_malformed_input_without_panicking() {
        assert_eq!(Scan::new("\"unterminated").string(), None);
        assert_eq!(Scan::new("\"bad\\q\"").string(), None);
        assert_eq!(Scan::new("\"trunc\\u00").string(), None);
        assert_eq!(Scan::new("x").usize_(), None);
        assert_eq!(Scan::new("99999999999999999999999999").usize_(), None);
        assert_eq!(Scan::new("maybe").bool_(), None);
    }
}
