//! Figure 10 — memory consumption of the candidate list, measured as the
//! paper does: the average number of live bit signatures (each 2K bits),
//! on VS2 with BitIndex + Sequential order.
//!
//! * Fig. 10(a): vs the similarity threshold δ — higher δ prunes harder,
//!   so fewer signatures stay live.
//! * Fig. 10(b): vs the basic window size w — larger windows have more
//!   distinct cell ids, match fewer unrelated queries, and expire sooner.

use crate::table::{f2, f3};
use crate::{Ctx, Scale, Table};
use vdsms_core::{DetectorConfig, Order, Representation};
use vdsms_workload::StreamKind;

fn cfg_for(ctx: &Ctx, delta: f64, w_seconds: f64) -> DetectorConfig {
    DetectorConfig {
        delta,
        window_keyframes: ctx.spec().window_keyframes(w_seconds),
        order: Order::Sequential,
        representation: Representation::Bit,
        use_index: true,
        ..Default::default()
    }
}

/// Fig. 10(a): average live signatures vs δ.
pub fn run_delta(ctx: &mut Ctx, scale: Scale) -> Table {
    let m = ctx.library().len();
    let mut table = Table::new(
        "Figure 10(a) — avg number of bit signatures vs δ (VS2, BitIndex/Seq)",
        &["δ", "avg signatures", "peak", "avg bytes (2K bits each)"],
    );
    table.note(format!("m = {m} queries, K = 800, w = 5 s"));
    for delta in scale.delta_sweep() {
        let cfg = cfg_for(ctx, delta, 5.0);
        let k = cfg.k;
        let res = ctx.run_engine(StreamKind::Vs2, cfg, m);
        table.push(vec![
            f2(delta),
            f3(res.stats.avg_signatures()),
            res.stats.live_signature_peak.to_string(),
            format!("{:.0}", res.stats.avg_signature_bytes(k)),
        ]);
    }
    table
}

/// Fig. 10(b): average live signatures vs w.
pub fn run_window(ctx: &mut Ctx, scale: Scale) -> Table {
    let m = ctx.library().len();
    let mut table = Table::new(
        "Figure 10(b) — avg number of bit signatures vs basic window w (VS2, BitIndex/Seq)",
        &["w (s)", "avg signatures", "peak", "avg bytes (2K bits each)"],
    );
    table.note(format!("m = {m} queries, K = 800, δ = 0.7"));
    for w in scale.w_sweep() {
        let cfg = cfg_for(ctx, 0.7, w);
        let k = cfg.k;
        let res = ctx.run_engine(StreamKind::Vs2, cfg, m);
        table.push(vec![
            format!("{w}"),
            f3(res.stats.avg_signatures()),
            res.stats.live_signature_peak.to_string(),
            format!("{:.0}", res.stats.avg_signature_bytes(k)),
        ]);
    }
    table
}
