// Fixture: NaN-unstable float comparisons. Expected findings:
// float-determinism x2 (sort_by with partial_cmp, bare partial_cmp).
fn rank(scores: &mut Vec<(f32, u32)>) {
    scores.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
}

fn better(a: f64, b: f64) -> bool {
    matches!(a.partial_cmp(&b), Some(core::cmp::Ordering::Greater))
}
