//! Serial/parallel fleet equivalence: for arbitrary interleaved
//! multi-stream workloads — including subscription churn mid-stream — the
//! sharded [`ParallelFleet`] must emit exactly the detection set of the
//! serial [`Fleet`], at every shard count, with identical aggregate
//! statistics. Plus the merge-algebra properties that make per-shard
//! aggregation well-defined.

use proptest::prelude::*;
use vdsms_core::{
    AnyFleet, Detector, DetectorConfig, Fleet, ParallelFleet, Query, Stats, StreamDetection,
    StreamId,
};

const K: usize = 64;

fn cfg() -> DetectorConfig {
    DetectorConfig { k: K, window_keyframes: 3, ..Default::default() }
}

/// A small query whose cells live in the stream's cell-id domain, so
/// random workloads actually produce detections.
fn query(id: u8) -> Query {
    let family = Detector::family_for(&cfg());
    let base = u64::from(id) * 2;
    let cells: Vec<u64> = (base..base + 4).map(|c| c % 16).collect();
    Query::from_cell_ids(u32::from(id), &family, &cells)
}

/// One step of an interleaved multi-stream workload.
#[derive(Debug, Clone)]
enum Op {
    /// Key frames for streams (stream index, cell id); frame indices are
    /// assigned per stream at apply time.
    Batch(Vec<(u8, u64)>),
    Subscribe(u8),
    Unsubscribe(u8),
}

fn arb_op(n_streams: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec((0..n_streams, 0u64..16), 1..40).prop_map(Op::Batch),
        (0u8..6).prop_map(Op::Subscribe),
        (0u8..6).prop_map(Op::Unsubscribe),
    ]
}

/// Canonical comparison key of one detection.
type DetKey = (StreamId, u32, u64, u64, u64);

fn sort_key(d: &StreamDetection) -> DetKey {
    (
        d.stream_id,
        d.detection.query_id,
        d.detection.start_frame,
        d.detection.end_frame,
        d.detection.windows as u64,
    )
}

/// Run the op sequence on any fleet; returns the sorted detection keys
/// and the aggregate stats. Duplicate subscribes are skipped (both sides
/// identically) so the sequence is valid.
fn apply(fleet: &mut AnyFleet, n_streams: u8, ops: &[Op]) -> (Vec<DetKey>, Stats) {
    let mut subscribed = std::collections::HashSet::new();
    let mut next_frame = vec![0u64; usize::from(n_streams)];
    for s in 0..n_streams {
        fleet.add_stream(StreamId::from(s)).unwrap();
    }
    let mut dets: Vec<StreamDetection> = Vec::new();
    for op in ops {
        match op {
            Op::Batch(frames) => {
                let batch: Vec<(StreamId, u64, u64)> = frames
                    .iter()
                    .map(|&(s, cell)| {
                        let s = s % n_streams; // ops are drawn for the max stream count
                        let f = next_frame[usize::from(s)];
                        next_frame[usize::from(s)] += 1;
                        (StreamId::from(s), f, cell)
                    })
                    .collect();
                dets.extend(fleet.push_batch(&batch).unwrap());
            }
            Op::Subscribe(id) => {
                if subscribed.insert(*id) {
                    fleet.subscribe(query(*id)).unwrap();
                }
            }
            Op::Unsubscribe(id) => {
                subscribed.remove(id);
                fleet.unsubscribe(u32::from(*id)).unwrap();
            }
        }
    }
    dets.extend(fleet.finish_all().unwrap());
    let stats = fleet.total_stats();
    let mut keys: Vec<_> = dets.iter().map(sort_key).collect();
    keys.sort_unstable();
    (keys, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: arbitrary interleaved workloads with
    /// mid-stream subscription churn produce the same detection set and
    /// the same aggregate stats on the serial fleet and on every shard
    /// count.
    #[test]
    fn parallel_equals_serial_for_arbitrary_workloads(
        n_streams in 1u8..7,
        ops in proptest::collection::vec(arb_op(7), 1..30),
    ) {
        let mut serial = AnyFleet::new(cfg());
        let (want, want_stats) = apply(&mut serial, n_streams, &ops);
        for shards in [1usize, 2, 4, 8] {
            let mut par = AnyFleet::Parallel(ParallelFleet::new(cfg(), shards));
            let (got, got_stats) = apply(&mut par, n_streams, &ops);
            prop_assert_eq!(&got, &want, "shards={}", shards);
            prop_assert_eq!(&got_stats, &want_stats, "shards={}", shards);
        }
    }

    /// Merging per-shard stats is order- and grouping-insensitive: any
    /// partition of the per-stream stats into shards, merged shard-wise
    /// and then across shards, equals the serial concatenation.
    #[test]
    fn stats_merge_is_partition_invariant(
        parts in proptest::collection::vec(
            (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000), 1..12),
        degradation in proptest::collection::vec(
            (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000), 12),
        assignment in proptest::collection::vec(0usize..4, 12),
    ) {
        let stats: Vec<Stats> = parts.iter().enumerate().map(|(i, &(w, cmp, enc, peak, det))| {
            // The degradation counters (corruption recovery + shard
            // supervision) must aggregate exactly like the cost counters:
            // sums, not maxes, independent of the shard partition.
            let (dropped, skipped, resyncs, restarts, lost) = degradation[i % degradation.len()];
            Stats {
                windows: w,
                sig_compares: cmp,
                sig_encodes: enc,
                live_signature_peak: peak,
                detections: det,
                frames_dropped: dropped,
                bytes_skipped: skipped,
                resyncs,
                shard_restarts: restarts,
                frames_lost: lost,
                ..Default::default()
            }
        }).collect();

        // Serial concatenation: merge everything left to right.
        let mut serial = Stats::default();
        for s in &stats {
            serial.merge(s);
        }

        // Sharded: merge within each shard, then across shards (and in
        // reverse shard order, exercising commutativity).
        let mut shards = vec![Stats::default(); 4];
        for (i, s) in stats.iter().enumerate() {
            shards[assignment[i % assignment.len()]].merge(s);
        }
        let mut sharded = Stats::default();
        for s in shards.iter().rev() {
            sharded.merge(s);
        }
        prop_assert_eq!(sharded, serial);

        // Degradation counters aggregate as plain sums (a lost frame on
        // one shard is a lost frame of the fleet), and a merged report is
        // degraded exactly when some part was.
        prop_assert_eq!(serial.frames_dropped, stats.iter().map(|s| s.frames_dropped).sum::<u64>());
        prop_assert_eq!(serial.bytes_skipped, stats.iter().map(|s| s.bytes_skipped).sum::<u64>());
        prop_assert_eq!(serial.resyncs, stats.iter().map(|s| s.resyncs).sum::<u64>());
        prop_assert_eq!(serial.shard_restarts, stats.iter().map(|s| s.shard_restarts).sum::<u64>());
        prop_assert_eq!(serial.frames_lost, stats.iter().map(|s| s.frames_lost).sum::<u64>());
        prop_assert_eq!(serial.is_degraded(), stats.iter().any(|s| s.is_degraded()));
    }

    /// Window bookkeeping under out-of-order `finish()` calls: finishing
    /// mid-stream closes exactly the buffered short window (windows
    /// counter advances iff key frames were pending), repeated finishes
    /// are no-ops, and the detector keeps accepting key frames afterwards
    /// with consistent window counts.
    #[test]
    fn finish_is_idempotent_and_reentrant(
        segments in proptest::collection::vec(
            proptest::collection::vec(0u64..16, 0..20), 1..8),
    ) {
        let mut det = Detector::new(cfg(), vdsms_core::QuerySet::new());
        det.subscribe(query(1));
        let w = cfg().window_keyframes as u64;
        let mut frame = 0u64;
        let mut expect_windows = 0u64;
        let mut pending = 0u64;
        for seg in &segments {
            for &cell in seg {
                det.push_keyframe(frame, cell);
                frame += 1;
                pending += 1;
                if pending == w {
                    expect_windows += 1;
                    pending = 0;
                }
            }
            // Out-of-order finish: flush whatever is buffered mid-stream.
            det.finish();
            if pending > 0 {
                expect_windows += 1;
                pending = 0;
            }
            prop_assert_eq!(det.stats().windows, expect_windows);
            // A second finish with an empty buffer must change nothing.
            let again = det.finish();
            prop_assert!(again.is_empty());
            prop_assert_eq!(det.stats().windows, expect_windows);
        }
    }
}

/// Concurrency stress: 8 shards, randomized batch sizes, pipelined
/// ingestion — every detection the serial fleet emits must come out of
/// the parallel fleet exactly once (no drops, no duplicates).
#[test]
fn stress_pipelined_8_shards_drops_nothing() {
    let n_streams: u32 = 16;
    let frames_per_stream: u64 = if cfg!(debug_assertions) { 300 } else { 1200 };

    // Deterministic xorshift for batch sizing and content.
    let mut rng_state = 0x243f_6a88_85a3_08d3u64;
    let mut rng = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };

    // Interleaved workload; streams periodically air query content.
    let mut workload: Vec<(StreamId, u64, u64)> = Vec::new();
    for f in 0..frames_per_stream {
        for s in 0..n_streams {
            let cell = if f % 11 < 4 { (u64::from(s) + f % 11) % 16 } else { rng() % 16 };
            workload.push((s, f, cell));
        }
    }

    let subscribe_all = |fleet: &mut dyn FnMut(Query)| {
        for id in 0..6u8 {
            fleet(query(id));
        }
    };

    let mut serial = Fleet::new(cfg());
    for s in 0..n_streams {
        serial.add_stream(s).unwrap();
    }
    subscribe_all(&mut |q| serial.subscribe(q));
    let mut want = serial.push_batch(&workload).unwrap();
    want.extend(serial.finish_all());

    let mut par = ParallelFleet::new(cfg(), 8);
    for s in 0..n_streams {
        par.add_stream(s).unwrap();
    }
    subscribe_all(&mut |q| par.subscribe(q).unwrap());
    let mut got: Vec<StreamDetection> = Vec::new();
    let mut i = 0usize;
    while i < workload.len() {
        let size = 1 + (rng() % 512) as usize;
        let end = (i + size).min(workload.len());
        par.push_batch_async(&workload[i..end]).unwrap();
        i = end;
        // Occasionally drain mid-flight (after a barrier).
        if rng() % 7 == 0 {
            par.quiesce().unwrap();
            got.extend(par.take_detections());
        }
    }
    par.quiesce().unwrap();
    got.extend(par.take_detections());
    got.extend(par.finish_all().unwrap());

    assert_eq!(got.len(), want.len(), "detection count oracle");
    let mut want_keys: Vec<_> = want.iter().map(sort_key).collect();
    let mut got_keys: Vec<_> = got.iter().map(sort_key).collect();
    want_keys.sort_unstable();
    got_keys.sort_unstable();
    assert_eq!(got_keys, want_keys);
    assert!(!want_keys.is_empty(), "stress workload must produce detections");
    assert_eq!(par.total_stats(), serial.total_stats());
}
