//! Diagnostics: what a rule reports, how it renders for humans, and the
//! machine-readable JSON form CI consumes.

use std::fmt::Write as _;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (e.g. `no-panic-hot-path`).
    pub rule: String,
    /// Path of the offending file, workspace-relative where possible.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed, for rendering.
    pub snippet: String,
}

impl Diagnostic {
    /// Render as `file:line:col: [rule] message` plus the snippet line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        );
        if !self.snippet.is_empty() {
            let _ = writeln!(out, "    | {}", self.snippet);
        }
        out
    }
}

/// The result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in (file, line, col) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of suppressed findings (matched by an `allow` directive).
    pub suppressed: usize,
}

impl Report {
    /// True when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
        }
        let _ = writeln!(
            out,
            "vdsms-lint: {} violation(s), {} suppressed, {} file(s) scanned",
            self.diagnostics.len(),
            self.suppressed,
            self.files_scanned
        );
        out
    }

    /// Machine-readable JSON (stable key order, no external deps).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \"snippet\": {}",
                json_string(&d.rule),
                json_string(&d.file),
                d.line,
                d.col,
                json_string(&d.message),
                json_string(&d.snippet),
            );
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"count\": {},\n  \"suppressed\": {},\n  \"files_scanned\": {}\n}}\n",
            self.diagnostics.len(),
            self.suppressed,
            self.files_scanned
        );
        out
    }
}

/// JSON-escape a string (quotes, backslashes, control characters).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "no-panic-hot-path".into(),
            file: "crates/core/src/x.rs".into(),
            line: 3,
            col: 7,
            message: "`unwrap()` forbidden".into(),
            snippet: "let v = m.get(&k).unwrap();".into(),
        }
    }

    #[test]
    fn render_contains_location_and_rule() {
        let r = diag().render();
        assert!(r.contains("crates/core/src/x.rs:3:7"));
        assert!(r.contains("[no-panic-hot-path]"));
        assert!(r.contains("unwrap"));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_report_shape() {
        let mut rep = Report { files_scanned: 2, ..Default::default() };
        rep.diagnostics.push(diag());
        let j = rep.to_json();
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("\"rule\": \"no-panic-hot-path\""));
        // Empty report is still valid JSON with an empty array.
        let empty = Report::default().to_json();
        assert!(empty.contains("\"violations\": []"));
    }
}
