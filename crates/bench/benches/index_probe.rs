//! HQ-index probe vs brute-force query scan — the mechanism behind
//! Figure 9's flat-vs-linear CPU curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vdsms_core::{HqIndex, Query, QuerySet};
use vdsms_sketch::{MinHashFamily, Sketch};

const K: usize = 800;

fn query_set(family: &MinHashFamily, m: u32) -> QuerySet {
    QuerySet::from_queries(
        (0..m)
            .map(|i| {
                let ids: Vec<u64> = (0..60u64).map(|j| u64::from(i) * 1000 + j).collect();
                Query::from_cell_ids(i, family, &ids)
            })
            .collect(),
    )
}

fn bench_probe(c: &mut Criterion) {
    let family = MinHashFamily::new(K, 9);
    let mut g = c.benchmark_group("hq_probe");
    g.sample_size(20);
    for m in [10u32, 50, 200] {
        let qs = query_set(&family, m);
        let ix = HqIndex::build(K, &qs);
        // A window related to one query (the common case).
        let sk = Sketch::from_ids(&family, 3000..3040u64);
        g.bench_with_input(BenchmarkId::new("indexed", m), &m, |bench, _| {
            bench.iter(|| ix.probe(black_box(&sk), 0.7));
        });
        g.bench_with_input(BenchmarkId::new("bruteforce", m), &m, |bench, _| {
            bench.iter(|| ix.probe_bruteforce(black_box(&sk), 0.7, &qs));
        });
    }
    g.finish();
}

fn bench_index_maintenance(c: &mut Criterion) {
    let family = MinHashFamily::new(K, 9);
    let mut g = c.benchmark_group("hq_maintenance");
    g.sample_size(20);
    let qs = query_set(&family, 100);
    let new_q = {
        let ids: Vec<u64> = (0..60u64).map(|j| 999_000 + j).collect();
        Query::from_cell_ids(9999, &family, &ids)
    };
    g.bench_function("subscribe_into_100", |bench| {
        bench.iter_batched(
            || HqIndex::build(K, &qs),
            |mut ix| {
                ix.insert(black_box(&new_q));
                ix
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function("unsubscribe_from_100", |bench| {
        bench.iter_batched(
            || HqIndex::build(K, &qs),
            |mut ix| {
                ix.remove(black_box(50));
                ix
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_probe, bench_index_maintenance);
criterion_main!(benches);
