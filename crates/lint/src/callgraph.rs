//! Workspace call graph + interprocedural hot-path reachability.
//!
//! Edges come from name resolution against [`crate::symbols`]:
//!
//! - `free_call(…)` and `module::free_call(…)` resolve to free functions
//!   of that name.
//! - `Type::assoc(…)` and `Self::assoc(…)` resolve via the qualified
//!   `(self type, name)` index.
//! - `recv.method(…)` resolves by method name — **except** names on the
//!   [`AMBIGUOUS_METHODS`] list (`push`, `insert`, `get`, `lock`, …),
//!   which collide with ubiquitous std methods; resolving those by bare
//!   name would wire `map.insert(…)` to `HqIndex::insert` and flood the
//!   hot set with false members. The one precision recovery: a call on
//!   the literal receiver `self` resolves through the enclosing impl's
//!   qualified index first, ambiguous or not.
//!
//! The result is an *under*-approximate graph: a missed edge shrinks
//! analysis coverage, a spurious edge would manufacture false positives
//! — the lint-correct trade-off. Reachability from `// vdsms-lint:
//! entry` functions defines the hot set; BFS parents reconstruct the
//! call chain every hot-path diagnostic prints.

use crate::ast::Pos;
use crate::summaries::CallRef;
use crate::symbols::SymbolTable;
use std::collections::BTreeSet;

/// Method names never resolved through the bare method-name index
/// because std types define them too (receiver types are unknown to a
/// name-based resolver).
pub const AMBIGUOUS_METHODS: &[&str] = &[
    "append", "as_bytes", "as_ref", "as_slice", "as_str", "clear", "clone", "cmp", "collect",
    "contains", "contains_key", "count", "default", "drain", "entry", "eq", "extend", "fill",
    "first", "flush", "fmt", "get", "get_mut", "insert", "into_iter", "is_empty", "iter",
    "iter_mut", "join", "keys", "last", "len", "lock", "max", "merge", "min", "new", "next",
    "pop", "push", "read", "remove", "reserve", "resize", "retain", "send", "sort", "split",
    "take", "to_owned", "to_string", "to_vec", "values", "write",
];

/// One call edge's site.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Callee function id.
    pub callee: usize,
    /// Position of the call in the caller's file.
    pub pos: Pos,
}

/// The workspace call graph: per caller id, resolved call sites.
#[derive(Debug)]
pub struct CallGraph {
    /// `edges[caller]` lists resolved callees with call positions.
    pub edges: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Build the graph for every function in `symbols`, resolving the
    /// unresolved [`CallRef`]s each summary recorded.
    pub fn build(symbols: &SymbolTable<'_>) -> CallGraph {
        let resolved: Vec<Vec<Vec<usize>>> = symbols
            .fns
            .iter()
            .map(|f| {
                f.def
                    .calls
                    .iter()
                    .map(|cr| resolve_call_ref(symbols, cr, f.self_ty, f.def.is_test))
                    .collect()
            })
            .collect();
        Self::from_resolved(symbols, &resolved)
    }

    /// Build the graph from an already-resolved per-function,
    /// per-call-site callee matrix (as the link phase computes for its
    /// own analyses) — name resolution is the expensive half of graph
    /// construction, so sharing it avoids resolving every call twice.
    pub fn from_resolved(symbols: &SymbolTable<'_>, resolved: &[Vec<Vec<usize>>]) -> CallGraph {
        let mut edges: Vec<Vec<CallSite>> = vec![Vec::new(); symbols.fns.len()];
        for f in &symbols.fns {
            let mut sites: Vec<CallSite> = Vec::new();
            for (cr, callees) in f.def.calls.iter().zip(&resolved[f.id]) {
                let pos = cr.pos();
                for &callee in callees {
                    sites.push(CallSite { callee, pos });
                }
            }
            sites.sort_by_key(|s| (s.callee, s.pos.line, s.pos.col));
            sites.dedup_by_key(|s| s.callee);
            edges[f.id] = sites;
        }
        CallGraph { edges }
    }
}

/// Resolve one call reference to callee ids, with the production→test
/// edge filter applied (calls cannot target test-only code from
/// production paths; the edge is dropped rather than tainting the hot
/// set). Used both by [`CallGraph::build`] and per-site by the link
/// phase (lock replay, taint flows, discard judgment).
pub fn resolve_call_ref(
    symbols: &SymbolTable<'_>,
    cr: &CallRef,
    self_ty: Option<&str>,
    caller_is_test: bool,
) -> Vec<usize> {
    let mut targets = match cr {
        CallRef::Path { segs, .. } => resolve_path_call(symbols, segs, self_ty),
        CallRef::Method { recv_self, name, .. } => {
            resolve_method_call(symbols, *recv_self, name, self_ty)
        }
    };
    if !caller_is_test {
        targets.retain(|&callee| !symbols.fns[callee].def.is_test);
    }
    targets
}

/// Resolve `a::b::f(…)`.
fn resolve_path_call(symbols: &SymbolTable<'_>, segs: &[String], self_ty: Option<&str>) -> Vec<usize> {
    match segs {
        [] => Vec::new(),
        [name] => symbols.free_fns(name).to_vec(),
        [.., qual, name] => {
            let qual: &str = if qual == "Self" { self_ty.unwrap_or(qual) } else { qual };
            let via_qual = symbols.qualified(qual, name);
            if !via_qual.is_empty() {
                via_qual.to_vec()
            } else {
                // `module::free_fn(…)` — the qualifier was a module path.
                symbols.free_fns(name).to_vec()
            }
        }
    }
}

/// Resolve `recv.method(…)`.
fn resolve_method_call(
    symbols: &SymbolTable<'_>,
    recv_self: bool,
    method: &str,
    self_ty: Option<&str>,
) -> Vec<usize> {
    // `self.method(…)`: the enclosing impl's own method wins, even for
    // ambiguous names.
    if recv_self {
        if let Some(ty) = self_ty {
            let via_qual = symbols.qualified(ty, method);
            if !via_qual.is_empty() {
                return via_qual.to_vec();
            }
        }
    }
    if AMBIGUOUS_METHODS.binary_search(&method).is_ok() {
        return Vec::new();
    }
    symbols.methods(method).to_vec()
}

/// Hot-set computation: BFS over [`CallGraph`] from the entry functions.
#[derive(Debug)]
pub struct Reachability {
    /// Whether each function id is on the hot path.
    pub hot: Vec<bool>,
    /// BFS parent: the (caller, call site) that first reached each id.
    parent: Vec<Option<(usize, Pos)>>,
}

impl Reachability {
    /// Compute reachability from every entry marker (scoped or not) —
    /// the union hot set.
    pub fn from_entries(symbols: &SymbolTable<'_>, graph: &CallGraph) -> Reachability {
        Self::from_seeds(symbols.entries().map(|f| f.id).collect(), graph)
    }

    /// Compute reachability for one hot-path rule: seeded only by bare
    /// `entry` markers and `entry(…)` markers that name `rule`, so a
    /// batch-evaluation entry scoped to `no-panic-hot-path` extends
    /// panic coverage without flooding the allocation rule.
    pub fn from_entries_for(
        symbols: &SymbolTable<'_>,
        graph: &CallGraph,
        rule: &str,
    ) -> Reachability {
        Self::from_seeds(symbols.entries_for(rule).map(|f| f.id).collect(), graph)
    }

    fn from_seeds(
        queue: std::collections::VecDeque<usize>,
        graph: &CallGraph,
    ) -> Reachability {
        let n = graph.edges.len();
        let mut hot = vec![false; n];
        let mut parent: Vec<Option<(usize, Pos)>> = vec![None; n];
        let mut queue = queue;
        for &id in &queue {
            hot[id] = true;
        }
        while let Some(id) = queue.pop_front() {
            for site in &graph.edges[id] {
                if !hot[site.callee] {
                    hot[site.callee] = true;
                    parent[site.callee] = Some((id, site.pos));
                    queue.push_back(site.callee);
                }
            }
        }
        Reachability { hot, parent }
    }

    /// The call chain entry → … → `id` as function ids (entry first).
    pub fn chain(&self, id: usize) -> Vec<usize> {
        let mut chain = vec![id];
        let mut cur = id;
        let mut guard = 0usize;
        while let Some((caller, _)) = self.parent[cur] {
            chain.push(caller);
            cur = caller;
            guard += 1;
            if guard > self.parent.len() {
                break; // defensive: parents form a tree, but never loop
            }
        }
        chain.reverse();
        chain
    }

    /// Render the chain as `A → B → C` using qualified names.
    pub fn chain_names(&self, symbols: &SymbolTable<'_>, id: usize) -> String {
        let names: Vec<String> =
            self.chain(id).iter().map(|&f| symbols.fns[f].qual_name()).collect();
        names.join(" → ")
    }
}

/// Per-function transitive lock/alloc style summaries need a fixpoint
/// over the graph; this helper computes, for a per-function base set,
/// the union over everything each function can reach (including
/// itself).
pub fn transitive_union<T: Clone + Ord>(
    graph: &CallGraph,
    base: &[BTreeSet<T>],
) -> Vec<BTreeSet<T>> {
    let n = graph.edges.len();
    let mut acc: Vec<BTreeSet<T>> = base.to_vec();
    // Simple fixpoint: iterate until stable. Workspace graphs are small
    // (hundreds of nodes); bound the rounds defensively.
    for _ in 0..n + 1 {
        let mut changed = false;
        for caller in 0..n {
            let mut add: Vec<T> = Vec::new();
            for site in &graph.edges[caller] {
                for item in &acc[site.callee] {
                    if !acc[caller].contains(item) {
                        add.push(item.clone());
                    }
                }
            }
            if !add.is_empty() {
                acc[caller].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::summaries::{summarize, FileSummary};
    use crate::SourceFile;

    fn build(sources: &[(&str, &str)]) -> (Vec<SourceFile>, Vec<FileSummary>) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(name, src)| SourceFile {
                crate_name: name.to_string(),
                path: format!("crates/{name}/src/lib.rs"),
                source: src.to_string(),
                is_crate_root: true,
            })
            .collect();
        let summaries: Vec<_> = files
            .iter()
            .map(|f| {
                let lexed = lex(&f.source);
                summarize(f, &lexed, &parse_file(&lexed))
            })
            .collect();
        (files, summaries)
    }

    #[test]
    fn ambiguous_list_is_sorted_for_binary_search() {
        let mut sorted = AMBIGUOUS_METHODS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, AMBIGUOUS_METHODS);
    }

    #[test]
    fn reachability_crosses_crates_with_chain() {
        let (files, summaries) = build(&[
            (
                "a",
                "// vdsms-lint: entry\npub fn ingest(d: &Det) { d.step(); }",
            ),
            ("b", "pub struct Det;\nimpl Det { pub fn step(&self) { deep_helper(); } }"),
            ("c", "pub fn deep_helper() { danger(); }\npub fn danger() {}\npub fn cold() {}"),
        ]);
        let table = SymbolTable::build(&files, &summaries);
        let graph = CallGraph::build(&table);
        let reach = Reachability::from_entries(&table, &graph);
        let id_of = |name: &str| table.fns.iter().find(|f| f.def.name == name).unwrap().id;
        assert!(reach.hot[id_of("ingest")]);
        assert!(reach.hot[id_of("step")]);
        assert!(reach.hot[id_of("danger")]);
        assert!(!reach.hot[id_of("cold")]);
        assert_eq!(
            reach.chain_names(&table, id_of("danger")),
            "ingest → Det::step → deep_helper → danger"
        );
    }

    #[test]
    fn ambiguous_method_names_do_not_create_edges() {
        let (files, summaries) = build(&[(
            "a",
            "// vdsms-lint: entry\npub fn hot(m: &mut Map) { m.insert(1); }\n\
             pub struct Hq;\nimpl Hq { pub fn insert(&mut self, x: u32) {} }",
        )]);
        let table = SymbolTable::build(&files, &summaries);
        let graph = CallGraph::build(&table);
        let reach = Reachability::from_entries(&table, &graph);
        let insert = table.fns.iter().find(|f| f.def.name == "insert").unwrap().id;
        assert!(!reach.hot[insert], "`m.insert` must not resolve to `Hq::insert`");
    }

    #[test]
    fn self_calls_resolve_even_for_ambiguous_names() {
        let (files, summaries) = build(&[(
            "a",
            "pub struct S;\nimpl S {\n  // vdsms-lint: entry\n  pub fn run(&mut self) { self.push(1); }\n  fn push(&mut self, x: u32) { side(); }\n}\nfn side() {}",
        )]);
        let table = SymbolTable::build(&files, &summaries);
        let graph = CallGraph::build(&table);
        let reach = Reachability::from_entries(&table, &graph);
        let side = table.fns.iter().find(|f| f.def.name == "side").unwrap().id;
        assert!(reach.hot[side], "self.push must resolve to S::push");
    }

    #[test]
    fn qualified_and_module_calls_resolve() {
        let (files, summaries) = build(&[(
            "a",
            "// vdsms-lint: entry\npub fn hot() { Det::probe(); util::helper(); }\n\
             pub struct Det;\nimpl Det { pub fn probe() {} }\n\
             mod util { pub fn helper() {} }",
        )]);
        let table = SymbolTable::build(&files, &summaries);
        let graph = CallGraph::build(&table);
        let reach = Reachability::from_entries(&table, &graph);
        for name in ["probe", "helper"] {
            let id = table.fns.iter().find(|f| f.def.name == name).unwrap().id;
            assert!(reach.hot[id], "{name} should be hot");
        }
    }

    #[test]
    fn scoped_entries_seed_only_their_rule() {
        let (files, summaries) = build(&[(
            "a",
            "// vdsms-lint: entry(no-panic-hot-path)\n\
             pub fn sweep() { shared_helper(); }\n\
             // vdsms-lint: entry\n\
             pub fn ingest() { core_step(); }\n\
             pub fn shared_helper() {}\n\
             pub fn core_step() {}",
        )]);
        let table = SymbolTable::build(&files, &summaries);
        let graph = CallGraph::build(&table);
        let panic_reach = Reachability::from_entries_for(&table, &graph, "no-panic-hot-path");
        let alloc_reach = Reachability::from_entries_for(&table, &graph, "no-alloc-hot-path");
        let id_of = |name: &str| table.fns.iter().find(|f| f.def.name == name).unwrap().id;
        // The scoped entry and its callees are panic-hot only.
        assert!(panic_reach.hot[id_of("sweep")]);
        assert!(panic_reach.hot[id_of("shared_helper")]);
        assert!(!alloc_reach.hot[id_of("sweep")]);
        assert!(!alloc_reach.hot[id_of("shared_helper")]);
        // The bare entry seeds both rules.
        for reach in [&panic_reach, &alloc_reach] {
            assert!(reach.hot[id_of("ingest")]);
            assert!(reach.hot[id_of("core_step")]);
        }
        // The union set (used by `from_entries` consumers) sees both.
        let union = Reachability::from_entries(&table, &graph);
        assert!(union.hot[id_of("sweep")] && union.hot[id_of("ingest")]);
    }

    #[test]
    fn transitive_union_reaches_fixpoint() {
        // 0 -> 1 -> 2, base sets {}, {}, {x}.
        let graph = CallGraph {
            edges: vec![
                vec![CallSite { callee: 1, pos: Pos::new(1, 1) }],
                vec![CallSite { callee: 2, pos: Pos::new(1, 1) }],
                vec![],
            ],
        };
        let base = vec![
            BTreeSet::new(),
            BTreeSet::new(),
            BTreeSet::from(["x".to_string()]),
        ];
        let acc = transitive_union(&graph, &base);
        assert!(acc[0].contains("x"));
        assert!(acc[1].contains("x"));
    }
}
