//! The short-video library: the paper's 200 clips, synthesized.
//!
//! Clips are regenerated from their seeds on demand (pixel frames are too
//! large to keep resident for a long stream), while their fingerprints —
//! all any detection method ever needs — are cached.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vdsms_codec::{DcFrame, Encoder, PartialDecoder};
use vdsms_features::{FeatureConfig, FeatureExtractor};
use vdsms_video::source::{ClipGenerator, SourceSpec};
use vdsms_video::{Clip, EditPipeline};

/// Identity of one library clip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClipSpec {
    /// Clip id (also the query id it becomes).
    pub id: u32,
    /// Generator seed.
    pub seed: u64,
    /// Duration in seconds.
    pub duration_s: f64,
}

/// The library of short videos.
#[derive(Debug, Clone)]
pub struct ClipLibrary {
    spec: crate::spec::WorkloadSpec,
    clips: Vec<ClipSpec>,
}

impl ClipLibrary {
    /// Build the library for a workload spec (durations drawn uniformly
    /// from the spec's range, deterministically per seed).
    pub fn new(spec: crate::spec::WorkloadSpec) -> ClipLibrary {
        spec.validate();
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xc11b_5eed);
        let clips = (0..spec.num_clips as u32)
            .map(|id| ClipSpec {
                id,
                seed: rng.gen::<u64>(),
                duration_s: rng.gen_range(spec.clip_min_s..=spec.clip_max_s),
            })
            .collect();
        ClipLibrary { spec, clips }
    }

    /// The workload spec this library belongs to.
    pub fn spec(&self) -> &crate::spec::WorkloadSpec {
        &self.spec
    }

    /// Clip identities.
    pub fn clips(&self) -> &[ClipSpec] {
        &self.clips
    }

    /// Number of clips.
    pub fn len(&self) -> usize {
        self.clips.len()
    }

    /// Whether the library is empty (never true for a valid spec).
    pub fn is_empty(&self) -> bool {
        self.clips.is_empty()
    }

    /// Regenerate the pixel frames of clip `id` (the *original*, as
    /// inserted into VS1 and used as the query).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn original(&self, id: u32) -> Clip {
        let cs = self.clips[id as usize];
        let source = SourceSpec {
            width: self.spec.width,
            height: self.spec.height,
            fps: self.spec.fps,
            seed: cs.seed,
            min_scene_s: 2.0,
            max_scene_s: 8.0,
            motifs: self.spec.motifs(),
        };
        ClipGenerator::new(source).clip(cs.duration_s)
    }

    /// The VS2-edited version of clip `id`: tamper pipeline (brightness/
    /// color, noise, resolution, PAL frame rate, segment re-ordering)
    /// followed by a re-compression round trip at the VS2 quality.
    pub fn edited(&self, id: u32) -> Clip {
        let original = self.original(id);
        let pipeline = EditPipeline::vs2_standard(
            self.clips[id as usize].seed ^ 0xed17,
            original.width(),
            original.height(),
            original.fps(),
            self.spec.reorder_segments.min(original.len() / 2).max(1),
        );
        let edited = pipeline.apply(&original);
        // Re-compression round trip: encode at the VS2 quality and decode
        // back to pixels, picking up a second generation of quantization
        // noise exactly like the paper's re-compressed copies.
        let bytes = Encoder::encode_clip(
            &edited,
            vdsms_codec::EncoderConfig { gop: self.spec.gop, quality: self.spec.vs2_quality, motion_search: true },
        );
        let frames = vdsms_codec::Decoder::new(&bytes)
            .expect("own encoding must parse")
            .decode_all()
            .expect("own encoding must decode");
        Clip::new(frames, edited.fps())
    }

    /// Key-frame DC frames of a clip under the *stream* encoder settings —
    /// what the partial decoder would see if this clip were broadcast
    /// alone.
    pub fn dc_frames(&self, clip: &Clip) -> Vec<DcFrame> {
        let bytes = Encoder::encode_clip(clip, self.spec.encoder_config());
        PartialDecoder::new(&bytes)
            // vdsms-lint: allow(no-panic-hot-path) reason="parsing bytes this same call just encoded; a failure is a codec bug, not an input condition"
            .expect("own encoding must parse")
            .decode_all()
            // vdsms-lint: allow(no-panic-hot-path) reason="decoding bytes this same call just encoded; a failure is a codec bug, not an input condition"
            .expect("own encoding must decode")
    }

    /// Fingerprint a clip: cell id per key frame, under the given feature
    /// configuration.
    pub fn fingerprints(&self, clip: &Clip, features: &FeatureConfig) -> Vec<u64> {
        let extractor = FeatureExtractor::new(*features);
        extractor.fingerprint_sequence(&self.dc_frames(clip))
    }

    /// Fingerprints of the original clip `id` — the query sequence
    /// subscribed to the engine.
    pub fn query_fingerprints(&self, id: u32, features: &FeatureConfig) -> Vec<u64> {
        self.fingerprints(&self.original(id), features)
    }

    /// Per-key-frame normalized feature vectors of the original clip `id`
    /// — the query representation the baselines consume.
    pub fn query_features(&self, id: u32, features: &FeatureConfig) -> Vec<Vec<f32>> {
        let extractor = FeatureExtractor::new(*features);
        self.dc_frames(&self.original(id)).iter().map(|d| extractor.feature_vector(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use std::collections::HashSet;

    fn library() -> ClipLibrary {
        ClipLibrary::new(WorkloadSpec::tiny(7))
    }

    #[test]
    fn library_is_deterministic() {
        let a = ClipLibrary::new(WorkloadSpec::tiny(7));
        let b = ClipLibrary::new(WorkloadSpec::tiny(7));
        assert_eq!(a.clips(), b.clips());
        assert_eq!(
            a.original(0).frames()[0],
            b.original(0).frames()[0],
            "clip regeneration must be reproducible"
        );
    }

    #[test]
    fn durations_in_spec_range() {
        let lib = library();
        for c in lib.clips() {
            assert!((8.0..=16.0).contains(&c.duration_s));
        }
    }

    #[test]
    fn clips_are_distinct() {
        let lib = library();
        let seeds: HashSet<u64> = lib.clips().iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), lib.len());
        let a = lib.original(0);
        let b = lib.original(1);
        assert!(a.frames()[0].mean_abs_diff(&b.frames()[0]) > 1.0);
    }

    #[test]
    fn edited_clip_is_pal_and_reordered() {
        let lib = library();
        let original = lib.original(2);
        let edited = lib.edited(2);
        assert_eq!(edited.fps(), vdsms_video::EditPipeline::pal_equivalent(original.fps()));
        assert!(edited.height() > original.height(), "PAL re-encode adds lines");
        // Frame count scales with the rate change (10 → 25/3 fps here the
        // spec uses 10fps; PAL target is 25fps → more frames).
        assert_ne!(edited.len(), original.len());
    }

    #[test]
    fn query_fingerprints_have_one_cell_per_keyframe() {
        let lib = library();
        let fc = FeatureConfig::default();
        let fps = lib.query_fingerprints(0, &fc);
        let expect = (lib.clips()[0].duration_s * lib.spec().keyframe_rate()).round() as usize;
        assert!(
            (fps.len() as i64 - expect as i64).abs() <= 1,
            "{} key frames for {} expected",
            fps.len(),
            expect
        );
    }

    #[test]
    fn original_and_edited_fingerprints_overlap_as_sets() {
        // The end-to-end robustness property that VS2 detection relies on.
        let lib = library();
        let fc = FeatureConfig::default();
        let a: HashSet<u64> = lib.query_fingerprints(1, &fc).into_iter().collect();
        let b: HashSet<u64> =
            lib.fingerprints(&lib.edited(1), &fc).into_iter().collect();
        let inter = a.intersection(&b).count();
        let union = a.len() + b.len() - inter;
        let jaccard = inter as f64 / union as f64;
        assert!(jaccard > 0.5, "edited clip set-similarity too low: {jaccard}");
    }

    #[test]
    fn query_features_are_normalized() {
        let lib = library();
        let feats = lib.query_features(0, &FeatureConfig::default());
        assert!(!feats.is_empty());
        for f in &feats {
            assert_eq!(f.len(), 5);
            assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}
