//! The ISSUE's acceptance suite for fault-tolerant ingestion: eight
//! concurrent streams, four of them damaged by the seeded fault
//! injector, monitored end-to-end in recovery mode.
//!
//! Must hold:
//! * nothing panics and no stream is dropped (recovery keeps damaged
//!   streams monitorable);
//! * the four uncorrupted streams produce bit-identical detections to a
//!   fully clean run;
//! * corrupted streams still detect the query airings that lie outside
//!   their damaged spans (within a window-alignment tolerance — frames
//!   lost to resynchronization shift window phase, not content);
//! * one stream is truncated mid-broadcast and still reports the airing
//!   it carried before the cut.
//!
//! Fault seeds are *searched* (deterministically) so the damage provably
//! misses the planted spans — the test never relies on luck, and the
//! preconditions are asserted, not assumed.

use vdsms::codec::{DcFrame, Encoder, EncoderConfig, PartialDecoder};
use vdsms::video::source::{ClipGenerator, SourceSpec};
use vdsms::video::{Clip, Fps};
use vdsms::workload::{inject_faults, FaultReport, FaultSpec};
use vdsms::{DetectorConfig, FeatureConfig};
use vdsms_cli::{monitor_streams_opts, sketch, MonitorHit, MonitorOpts};

const GOP: u32 = 5;
const W: usize = 4; // window_keyframes

fn spec(seed: u64) -> SourceSpec {
    SourceSpec {
        width: 96,
        height: 64,
        fps: Fps::integer(10),
        seed,
        min_scene_s: 1.0,
        max_scene_s: 3.0,
        motifs: None,
    }
}

fn enc() -> EncoderConfig {
    EncoderConfig { gop: GOP, quality: 80, motion_search: true }
}

fn clip(seed: u64, seconds: f64) -> Clip {
    ClipGenerator::new(spec(seed)).clip(seconds)
}

/// Deterministically find a fault seed whose damage satisfies `good`.
fn find_seed(bytes: &[u8], proto: &FaultSpec, good: impl Fn(&FaultReport) -> bool) -> FaultReport {
    for seed in 0..10_000u64 {
        let report = inject_faults(bytes, &proto.with_seed(seed));
        if good(&report) {
            return report;
        }
    }
    panic!("no fault seed in 0..10000 satisfies the damage constraints");
}

/// Whether a recovery-mode decode of `bytes` yields every key frame of
/// the original records `lo..hi` (indices shifted by the injector's
/// prior whole-record drops). The injector's damage map alone is not
/// enough to call a span survivable: damage *before* the span can make
/// the resync scanner land on a false header whose fake payload length
/// swallows real records downstream. This checks what actually decodes.
fn plant_survives_decode(bytes: &[u8], report: &FaultReport, lo: u64, hi: u64) -> bool {
    let Ok(mut decoder) = PartialDecoder::new_with_recovery(bytes, true) else {
        return false;
    };
    let mut frame = DcFrame::empty();
    let mut indices = Vec::new();
    while decoder.next_dc_frame_into(&mut frame).unwrap_or(false) {
        indices.push(frame.frame_index);
    }
    // One record per frame; key frames sit at record indices divisible
    // by the GOP. A dropped record shifts every later index back by one.
    (lo..hi).filter(|r| r % u64::from(GOP) == 0).all(|r| {
        !report.dropped_records.contains(&r) && indices.contains(&(r - report.shift_at(r)))
    })
}

fn hits_for(hits: &[MonitorHit], stream: u32) -> Vec<MonitorHit> {
    hits.iter().filter(|h| h.stream_id == stream).cloned().collect()
}

/// Does some hit for `query` on `stream` overlap the true airing
/// `[plant_start, plant_end]`, expanded by `tol` frames on both sides?
fn detects_airing(
    hits: &[MonitorHit],
    stream: u32,
    query: u32,
    plant_start: u64,
    plant_end: u64,
    tol: u64,
) -> bool {
    hits.iter().any(|h| {
        h.stream_id == stream
            && h.query_id == query
            && h.start_frame <= plant_end + tol
            && h.end_frame + tol >= plant_start
    })
}

#[test]
fn eight_stream_seeded_fault_suite() {
    let fc = FeatureConfig::default();
    let det = DetectorConfig { window_keyframes: W, ..Default::default() };

    // Two 10-second query clips.
    let q1 = clip(300, 10.0);
    let q2 = clip(301, 10.0);
    let catalogue = sketch(
        &[(1, Encoder::encode_clip(&q1, enc())), (2, Encoder::encode_clip(&q2, enc()))],
        &det,
        &fc,
    )
    .unwrap();

    // Eight 25-second broadcasts (250 one-frame records each, a key
    // frame every GOP=5). Streams 1, 3, 5, 7 air a query at frames
    // 100..200 (= records 100..200); stream 6 airs query 1 up front
    // (frames 0..100).
    let plant = |i: u64, q: &Clip| {
        let mut c = clip(900 + i, 10.0);
        c.append(q.clone());
        c.append(clip(950 + i, 5.0));
        c
    };
    let clips: Vec<Clip> = (0..8u64)
        .map(|i| match i {
            1 | 5 => plant(i, &q1),
            3 | 7 => plant(i, &q2),
            6 => {
                let mut c = q1.clone();
                c.append(clip(906, 15.0));
                c
            }
            _ => clip(900 + i, 25.0),
        })
        .collect();
    let clean: Vec<Vec<u8>> = clips.iter().map(|c| Encoder::encode_clip(c, enc())).collect();

    // Baseline: all eight streams clean, recovery mode on (recovery on a
    // clean stream is bit-identical to strict — asserted elsewhere).
    let recover = MonitorOpts { recover: true, faults: None };
    let clean_refs: Vec<&[u8]> = clean.iter().map(Vec::as_slice).collect();
    let baseline = monitor_streams_opts(&clean_refs, &catalogue, &det, &fc, &recover).unwrap();
    assert_eq!(baseline.failed(), 0);
    for r in &baseline.reports {
        assert!(r.health.is_clean(), "clean baseline must be undegraded: {r:?}");
    }
    // Every planted stream detects its query; unplanted streams are quiet.
    for (stream, query) in [(1u32, 1u32), (3, 2), (5, 1), (7, 2)] {
        assert!(
            detects_airing(&baseline.hits, stream, query, 100, 199, 0),
            "baseline stream {stream} must air query {query}: {:?}",
            baseline.hits
        );
    }
    assert!(detects_airing(&baseline.hits, 6, 1, 0, 99, 0), "{:?}", baseline.hits);
    for quiet in [0u32, 2, 4] {
        assert!(hits_for(&baseline.hits, quiet).is_empty(), "{:?}", baseline.hits);
    }

    // Damage streams 4..8. The planted span (records 100..200, widened
    // by one window = W·GOP frames on both sides) must stay clean so the
    // airing is detectable — verified both on the injector's damage map
    // and on what a recovery decode actually yields (damage before the
    // span can cascade into it via a false resynchronization). The
    // damage must be real: non-vacuity is asserted.
    let plant_lo = 100 - (W as u64) * u64::from(GOP);
    let plant_hi = 200 + (W as u64) * u64::from(GOP);
    // Stream 4 (unplanted): bit flips anywhere.
    let f4 = find_seed(
        &clean[4],
        &FaultSpec { flip_rate: 0.04, ..Default::default() },
        |r| r.records_faulted >= 2,
    );
    // Stream 5 (query 1 planted): flips + byte deletions off the plant.
    let f5 = find_seed(
        &clean[5],
        &FaultSpec { flip_rate: 0.01, delete_rate: 0.005, ..Default::default() },
        |r| {
            r.records_faulted >= 2
                && r.range_is_clean(plant_lo, plant_hi)
                && plant_survives_decode(&r.bytes, r, plant_lo, plant_hi)
        },
    );
    // Stream 6 (query 1 aired first): truncated well after the airing.
    let f6 = find_seed(
        &clean[6],
        &FaultSpec { truncate_rate: 0.02, ..Default::default() },
        |r| {
            r.truncated_at_record.is_some_and(|t| t >= 130)
                && plant_survives_decode(&r.bytes, r, 0, 100 + (W as u64) * u64::from(GOP))
        },
    );
    // Stream 7 (query 2 planted): whole-record drops + flips off the
    // plant — dropped records shift later frame indices back by one
    // each, which the airing tolerance below absorbs.
    let f7 = find_seed(
        &clean[7],
        &FaultSpec { drop_rate: 0.008, flip_rate: 0.008, ..Default::default() },
        |r| {
            !r.dropped_records.is_empty()
                && r.records_faulted >= 2
                && r.range_is_clean(plant_lo, plant_hi)
                && plant_survives_decode(&r.bytes, r, plant_lo, plant_hi)
        },
    );

    let faulted: Vec<&[u8]> = vec![
        &clean[0], &clean[1], &clean[2], &clean[3],
        &f4.bytes, &f5.bytes, &f6.bytes, &f7.bytes,
    ];
    let damaged = monitor_streams_opts(&faulted, &catalogue, &det, &fc, &recover).unwrap();

    // Recovery keeps every damaged stream monitorable to its end.
    assert_eq!(damaged.failed(), 0, "{:?}", damaged.reports);
    // The truncated stream visibly degrades (a mid-record cut always
    // costs at least one frame); flips may or may not break framing.
    assert!(damaged.reports[6].health.frames_dropped >= 1, "{:?}", damaged.reports[6]);

    // Uncorrupted streams are bit-identical to the clean run.
    for stream in 0..4u32 {
        assert_eq!(
            hits_for(&damaged.hits, stream),
            hits_for(&baseline.hits, stream),
            "clean stream {stream} must be unaffected by its neighbours"
        );
    }

    // Corrupted streams still detect the airings outside their damaged
    // spans. Tolerance: one window of alignment slack plus one GOP of
    // index shift per record the injector dropped or recovery lost.
    let slack = |health: vdsms::codec::IngestHealth, dropped: &FaultReport| {
        (W as u64 * u64::from(GOP))
            + u64::from(GOP) * (health.frames_dropped + dropped.dropped_records.len() as u64)
    };
    let t5 = slack(damaged.reports[5].health, &f5);
    assert!(
        detects_airing(&damaged.hits, 5, 1, 100, 199, t5),
        "stream 5 airing lost (tol {t5}): {:?}",
        damaged.hits
    );
    let t6 = slack(damaged.reports[6].health, &f6);
    assert!(
        detects_airing(&damaged.hits, 6, 1, 0, 99, t6),
        "stream 6 airing before the cut lost (tol {t6}): {:?}",
        damaged.hits
    );
    let t7 = slack(damaged.reports[7].health, &f7);
    assert!(
        detects_airing(&damaged.hits, 7, 2, 100, 199, t7),
        "stream 7 airing lost (tol {t7}): {:?}",
        damaged.hits
    );
    // Damaged background must not invent airings on the unplanted
    // corrupted stream.
    assert!(hits_for(&damaged.hits, 4).is_empty(), "{:?}", damaged.hits);
}
