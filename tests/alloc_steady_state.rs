//! Steady-state zero-allocation guarantee for the serial detector.
//!
//! A counting `#[global_allocator]` wraps `System`; after a warm-up phase
//! drives every scratch buffer, object pool and map to its high-water
//! mark, a steady-state phase of keyframe ingestion must touch the
//! allocator **zero** times. This pins the perf contract behind the
//! `no-alloc-hot-path` lint rule: the justified inline allows all claim
//! "warm-up only", "capacity-stable" or "event-driven", and this test is
//! where those claims are held to account.
//!
//! The Sketch representation is the zero-alloc configuration (the Bit
//! representation's on-demand signatures are per-relation heap events by
//! design); both candidate-store orders and both index modes are covered.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use vdsms::codec::bitio::ByteReader;
use vdsms::codec::{Encoder, EncoderConfig, StreamHeader};
use vdsms::core::{Detector, DetectorConfig, Order, Query, QuerySet, Representation};
use vdsms::features::{FeatureConfig, FeatureExtractor, FingerprintStream};
use vdsms::video::source::{ClipGenerator, SourceSpec};
use vdsms::video::Fps;

/// The allocation counter is process-global, so tests in this binary must
/// not count each other's traffic: every test body runs under this gate.
static GATE: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const WARMUP_KEYFRAMES: u64 = 4096;
const STEADY_KEYFRAMES: u64 = 4096;

/// Mixed traffic: mostly pseudo-random unrelated cell ids, with a steady
/// trickle of query cells so the relation paths, candidate pools and
/// probe scratch all stay exercised — but never enough of them in one
/// window to cross the detection threshold.
fn cell_id_for(i: u64, rng: &mut u64) -> u64 {
    if i.is_multiple_of(7) {
        10_000 + (i % 32)
    } else {
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        *rng
    }
}

fn steady_state_allocs(order: Order, use_index: bool) -> u64 {
    let cfg = DetectorConfig {
        delta: 0.95,
        window_keyframes: 4,
        order,
        representation: Representation::Sketch,
        use_index,
        ..Default::default()
    };
    let family = Detector::family_for(&cfg);
    let queries = QuerySet::from_queries(vec![
        Query::from_cell_ids(1, &family, &(10_000u64..10_032).collect::<Vec<_>>()),
        Query::from_cell_ids(2, &family, &(20_000u64..20_032).collect::<Vec<_>>()),
    ]);
    let mut det = Detector::new(cfg, queries);

    let mut rng = 0x2545_F491_4F6C_DD1Du64;
    for i in 0..WARMUP_KEYFRAMES {
        let id = cell_id_for(i, &mut rng);
        let dets = det.push_keyframe(i, id);
        assert!(dets.is_empty(), "the workload must not detect (it would allocate)");
    }

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for i in WARMUP_KEYFRAMES..WARMUP_KEYFRAMES + STEADY_KEYFRAMES {
        let id = cell_id_for(i, &mut rng);
        let dets = det.push_keyframe(i, id);
        assert!(dets.is_empty(), "the workload must not detect (it would allocate)");
    }
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

/// Single test function: the four configurations run sequentially rather
/// than as parallel `#[test]`s that would count each other's traffic.
#[test]
fn serial_detector_steady_state_is_allocation_free() {
    let _gate = GATE.lock().unwrap();
    for order in [Order::Sequential, Order::Geometric] {
        for use_index in [false, true] {
            let allocs = steady_state_allocs(order, use_index);
            assert_eq!(
                allocs, 0,
                "{order:?}/use_index={use_index}: {allocs} heap allocation(s) \
                 over {STEADY_KEYFRAMES} steady-state keyframes (expected 0)"
            );
        }
    }
}

/// The full fused front-end — compressed bytes → partial decode →
/// fingerprint → detector — must also be allocation-free in the steady
/// state. Warm-up passes drive the pooled `DcFrame`, the memoized
/// `RegionPlan`, the feature scratch and the detector to their high-water
/// marks; then one whole `reopen` + drain + push pass is counted.
#[test]
fn fused_ingestion_steady_state_is_allocation_free() {
    let _gate = GATE.lock().unwrap();
    let clip = ClipGenerator::new(SourceSpec {
        width: 176,
        height: 120,
        fps: Fps::integer(10),
        seed: 4242,
        min_scene_s: 1.0,
        max_scene_s: 3.0,
        motifs: None,
    })
    .clip(20.0);
    let bytes =
        Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 80, motion_search: true });

    let cfg = DetectorConfig {
        delta: 0.95,
        window_keyframes: 4,
        order: Order::Sequential,
        representation: Representation::Sketch,
        use_index: true,
        ..Default::default()
    };
    let family = Detector::family_for(&cfg);
    // Query cells sit far above the grid–pyramid partition's id range
    // (2 · 5 · 4⁵ = 2048 cells), so the stream can never detect —
    // detection events may allocate by design; the pipeline must not.
    let queries = QuerySet::from_queries(vec![Query::from_cell_ids(
        1,
        &family,
        &(10_000u64..10_032).collect::<Vec<_>>(),
    )]);
    let mut det = Detector::new(cfg, queries);

    let extractor = FeatureExtractor::new(FeatureConfig::default());
    let mut ingest = FingerprintStream::new(&bytes, extractor).unwrap();

    // Frame indices must keep rising across passes so the detector sees
    // one endless broadcast; each pass is well under 1000 frames long.
    let mut pass = 0u64;
    for _ in 0..3 {
        ingest.reopen(&bytes).unwrap();
        while let Some((frame_index, cell)) = ingest.next_fingerprint().unwrap() {
            let dets = det.push_keyframe(pass * 1_000 + frame_index, cell);
            assert!(dets.is_empty(), "the workload must not detect (it would allocate)");
        }
        pass += 1;
    }

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    ingest.reopen(&bytes).unwrap();
    let mut keyframes = 0u64;
    while let Some((frame_index, cell)) = ingest.next_fingerprint().unwrap() {
        let dets = det.push_keyframe(pass * 1_000 + frame_index, cell);
        assert!(dets.is_empty(), "the workload must not detect (it would allocate)");
        keyframes += 1;
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert!(keyframes > 0, "the stream must contain key frames");
    assert_eq!(
        allocs, 0,
        "fused bytes→detection pass: {allocs} heap allocation(s) \
         over {keyframes} steady-state keyframes (expected 0)"
    );
}

/// Corruption recovery is part of the hot path's perf contract too: a
/// stream whose records are damaged mid-broadcast must resynchronize —
/// error construction, header rescan, seek and health accounting — with
/// **zero** heap traffic in the steady state.
#[test]
fn recovery_mode_steady_state_is_allocation_free() {
    let _gate = GATE.lock().unwrap();
    let clip = ClipGenerator::new(SourceSpec {
        width: 176,
        height: 120,
        fps: Fps::integer(10),
        seed: 4343,
        min_scene_s: 1.0,
        max_scene_s: 3.0,
        motifs: None,
    })
    .clip(20.0);
    let mut bytes =
        Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 80, motion_search: true });

    // Wreck the frame-type byte of two mid-stream records: a guaranteed
    // framing error (not just wrong pixel content), so every pass truly
    // exercises the resync scanner.
    let offsets = {
        let mut r = ByteReader::new(&bytes);
        StreamHeader::read(&mut r).unwrap();
        let mut offsets = Vec::new();
        while !r.is_at_end() {
            offsets.push(r.position());
            r.skip(2).unwrap();
            let payload = r.get_u32_le().unwrap();
            r.skip(payload as usize).unwrap();
        }
        offsets
    };
    assert!(offsets.len() >= 20, "need a broadcast-sized stream");
    bytes[offsets[7]] = 0xee;
    bytes[offsets[13]] = 0xee;

    let cfg = DetectorConfig {
        delta: 0.95,
        window_keyframes: 4,
        order: Order::Sequential,
        representation: Representation::Sketch,
        use_index: true,
        ..Default::default()
    };
    let family = Detector::family_for(&cfg);
    let queries = QuerySet::from_queries(vec![Query::from_cell_ids(
        1,
        &family,
        &(10_000u64..10_032).collect::<Vec<_>>(),
    )]);
    let mut det = Detector::new(cfg, queries);

    let extractor = FeatureExtractor::new(FeatureConfig::default());
    let mut ingest =
        FingerprintStream::new_with_recovery(&bytes, extractor, true).unwrap();

    let mut pass = 0u64;
    for _ in 0..3 {
        ingest.reopen(&bytes).unwrap();
        while let Some((frame_index, cell)) = ingest.next_fingerprint().unwrap() {
            let dets = det.push_keyframe(pass * 1_000 + frame_index, cell);
            assert!(dets.is_empty(), "the workload must not detect (it would allocate)");
        }
        pass += 1;
    }
    assert!(ingest.health().frames_dropped >= 2, "damage must be real: {:?}", ingest.health());

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    ingest.reopen(&bytes).unwrap();
    let mut keyframes = 0u64;
    while let Some((frame_index, cell)) = ingest.next_fingerprint().unwrap() {
        let dets = det.push_keyframe(pass * 1_000 + frame_index, cell);
        assert!(dets.is_empty(), "the workload must not detect (it would allocate)");
        keyframes += 1;
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert!(keyframes > 0, "the damaged stream must still yield key frames");
    assert_eq!(
        allocs, 0,
        "recovery-mode bytes→detection pass: {allocs} heap allocation(s) \
         over {keyframes} steady-state keyframes (expected 0)"
    );
}
