//! The workspace-level (interprocedural + dataflow) analyses — the
//! **link phase** of the v3 two-phase pipeline. Per-file facts are
//! extracted once into [`crate::summaries::FileSummary`] records (the
//! cacheable phase); everything here works purely over those summaries
//! plus the [`crate::symbols`] table and [`crate::callgraph`] built
//! from them, so a file loaded from the incremental cache behaves
//! bit-identically to a freshly parsed one.
//!
//! - **`no-panic-hot-path` (v2)** — panic sites (`unwrap` / `expect` /
//!   `panic!` / `todo!` / `unimplemented!` / index-then-`clone`) flagged
//!   only in functions reachable from a `// vdsms-lint: entry` function;
//!   every diagnostic names the call chain from the entry point.
//! - **`no-alloc-hot-path`** — heap-allocating operations on the same
//!   hot set: growth methods (`push`, `insert`, `extend`, `collect`,
//!   `to_vec`, `clone`, …), allocating constructors
//!   (`Vec::with_capacity`, `Box::new`, `String::from`) and macros
//!   (`vec!`, `format!`). Capacity-zero constructors (`Vec::new`,
//!   `String::new`, `BTreeMap::new`) are exempt — they are
//!   allocation-free by std's documented guarantee, so flagging them
//!   would only breed no-op `allow`s; the growth calls that actually
//!   allocate are where the rule bites.
//! - **`lock-order`** — a static lock-acquisition graph: an edge A → B
//!   is recorded whenever lock B is acquired (directly or via a callee,
//!   by transitive summary) while a guard on A is held. Any cycle is a
//!   deadlock hazard; the diagnostic prints both witness chains.
//! - **`no-unchecked-arith`** — local taint: values from `get_*` /
//!   `read_*` method calls (untrusted stream bytes) flow through
//!   let-bindings; `+ - * <<` on a tainted operand is flagged unless the
//!   operand passed through an explicit cast or a call boundary
//!   (`u64::from(b)` widens; `wrapping_*` / `checked_*` /
//!   `saturating_*` are method calls, not bare operators, so they pass).
//! - **`float-determinism`** — `partial_cmp` in production code: its
//!   `Option` forces `unwrap`-or-fallback on NaN and its NaN behaviour
//!   is order-unstable; detection scoring must use `total_cmp` or
//!   integer keys.
//! - **`taint-unchecked-flow` (v3)** — interprocedural untrusted-byte
//!   taint: sources are `read_*` / `get_*` reads and `*_len` / `*_count`
//!   payload fields; sinks are slice indexing, capacity reservation and
//!   loop bounds. Flows are tracked through call returns (a bounded
//!   returns-taint fixpoint) and call arguments (a parameter-sink
//!   fixpoint), and each diagnostic prints the witness call chain.
//! - **`loop-progress` (v3)** — `while` / `loop` bodies reachable from
//!   an entry marker must contain a progress witness (cursor advance,
//!   drain call, or counter update); a malformed stream must never spin
//!   a recovery loop forever.
//! - **`no-swallowed-error` (v3)** — `let _ = …` / statement-level
//!   `.ok()` on a call whose resolved callee returns `Result` (channel
//!   send/recv flagged unconditionally): error paths must be handled or
//!   carry a reasoned `allow`.
//! - **`shared-state-discipline` (v4)** — a value captured by a spawned
//!   closure while the spawning thread keeps a handle must be
//!   synchronized: `Arc<RefCell/Cell<…>>` and `Rc<…>` crossing a spawn
//!   boundary are flagged with the creation → spawn → use witness
//!   (`static mut` is caught by the token half in `rules.rs`).
//! - **`guard-across-blocking` (v4)** — a lock guard live across
//!   `.recv()`, `.join()` or a bounded-channel `send` — directly, or
//!   through a call whose resolved callee transitively blocks (bounded
//!   fixpoint over the call graph, witness chain printed). The deadlock
//!   shape `lock-order` cannot see: one lock plus one channel.
//! - **`channel-protocol` (v4)** — mpsc misuse replayed against each
//!   function's channel binds: a send after the receiver was dropped, a
//!   one-shot reply `sync_channel(1)` sent more than once or in a loop,
//!   and a `send` result discarded in statement position on a
//!   non-shutdown path.

use crate::ast::Pos;
use crate::callgraph::{resolve_call_ref, transitive_union, CallGraph, Reachability};
use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::rules::{
    CHANNEL_PROTOCOL, FLOAT_DET, GUARD_BLOCKING, LOCK_ORDER, LOOP_PROGRESS, NO_ALLOC, NO_PANIC,
    NO_SWALLOWED_ERROR, NO_UNCHECKED_ARITH, SHARED_STATE, TAINT_FLOW,
};
use crate::summaries::{CallRef, ChanOpKind, FileSummary, LockEvent, SharedKind, TaintSrc};
use crate::symbols::SymbolTable;
use crate::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Run every workspace analysis over pre-extracted summaries.
/// `files[i]`, `summaries[i]` correspond; diagnostics are raw
/// (suppressions are applied by the driver).
pub fn analyze(
    files: &[SourceFile],
    summaries: &[FileSummary],
    config: &LintConfig,
) -> Vec<Diagnostic> {
    let symbols = SymbolTable::build(files, summaries);
    // Per-function, per-call-site resolution, shared by the call graph
    // and every analysis below (lock replay, taint fixpoints, discard
    // judgment) — resolution is the expensive half of linking, so it
    // runs exactly once.
    let resolved: Vec<Vec<Vec<usize>>> = symbols
        .fns
        .iter()
        .map(|f| {
            f.def
                .calls
                .iter()
                .map(|cr| resolve_call_ref(&symbols, cr, f.self_ty, f.def.is_test))
                .collect()
        })
        .collect();
    let graph = CallGraph::from_resolved(&symbols, &resolved);
    // Each hot-path rule gets its own hot set: bare `entry` markers seed
    // all of them, `entry(rule)` markers only the named rule (batch-
    // evaluation entries are panic-checked without dragging their
    // working-set allocations into `no-alloc-hot-path`).
    let reach_panic = Reachability::from_entries_for(&symbols, &graph, NO_PANIC);
    let reach_alloc = Reachability::from_entries_for(&symbols, &graph, NO_ALLOC);
    let reach_progress = Reachability::from_entries_for(&symbols, &graph, LOOP_PROGRESS);
    let rules_per_file: Vec<crate::config::RuleSet> =
        files.iter().map(|f| config.rules_for(&f.crate_name)).collect();

    let mut diags = Vec::new();
    let mut ctx = Ctx { files, symbols: &symbols, rules: &rules_per_file, diags: &mut diags };

    hot_path_rules(&mut ctx, &reach_panic, &reach_alloc);
    lock_order(&mut ctx, &graph);
    unchecked_arith(&mut ctx);
    float_determinism(&mut ctx);
    taint_flow(&mut ctx, &resolved);
    loop_progress(&mut ctx, &reach_progress);
    swallowed_errors(&mut ctx, &resolved);
    shared_state(&mut ctx);
    guard_across_blocking(&mut ctx, &graph);
    channel_protocol(&mut ctx);
    diags
}

struct Ctx<'a> {
    files: &'a [SourceFile],
    symbols: &'a SymbolTable<'a>,
    rules: &'a [crate::config::RuleSet],
    diags: &'a mut Vec<Diagnostic>,
}

impl Ctx<'_> {
    fn enabled(&self, file: usize, rule: &str) -> bool {
        self.rules[file].enabled(rule)
    }

    fn emit(&mut self, rule: &str, file: usize, pos: Pos, message: String) {
        let f = &self.files[file];
        let snippet = f
            .source
            .lines()
            .nth(pos.line.saturating_sub(1) as usize)
            .map(|s| s.trim().to_string())
            .unwrap_or_default();
        self.diags.push(Diagnostic {
            rule: rule.to_string(),
            file: f.path.clone(),
            line: pos.line,
            col: pos.col,
            message,
            snippet,
        });
    }
}

// ---------------------------------------------------------------------
// no-panic-hot-path / no-alloc-hot-path
// ---------------------------------------------------------------------

fn hot_path_rules(ctx: &mut Ctx<'_>, reach_panic: &Reachability, reach_alloc: &Reachability) {
    for f in &ctx.symbols.fns {
        if f.def.is_test {
            continue;
        }
        let check_panic = reach_panic.hot[f.id] && ctx.enabled(f.file, NO_PANIC);
        let check_alloc = reach_alloc.hot[f.id] && ctx.enabled(f.file, NO_ALLOC);
        if !check_panic && !check_alloc {
            continue;
        }
        let mut sites: Vec<(&str, Pos, &str)> = Vec::new();
        if check_panic {
            sites.extend(f.def.panic_sites.iter().map(|s| (NO_PANIC, s.pos, s.what.as_str())));
        }
        if check_alloc {
            sites.extend(f.def.alloc_sites.iter().map(|s| (NO_ALLOC, s.pos, s.what.as_str())));
        }
        // The summary keeps the two site lists separately; restore the
        // single-walk emission order (source position, panic before
        // alloc at a tie) so diagnostics stay byte-identical to v2.
        sites.sort_by_key(|(rule, pos, _)| (pos.line, pos.col, *rule != NO_PANIC));
        for (rule, pos, what) in sites {
            let (verb, reach) = if rule == NO_PANIC {
                ("can panic", reach_panic)
            } else {
                ("allocates", reach_alloc)
            };
            let chain = reach.chain_names(ctx.symbols, f.id);
            ctx.emit(
                rule,
                f.file,
                pos,
                format!("{what} {verb} on the steady-state hot path `{chain}`"),
            );
        }
    }
}

// ---------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------

/// One acquisition edge witness: where lock `to` was acquired while
/// `from` was held.
#[derive(Debug, Clone)]
struct EdgeWitness {
    file: usize,
    pos: Pos,
    fn_name: String,
    note: String,
}

fn lock_order(ctx: &mut Ctx<'_>, graph: &CallGraph) {
    // Per-function direct acquisitions (for transitive summaries) and
    // ordered edges with witnesses.
    let n = ctx.symbols.fns.len();
    let mut direct: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for f in &ctx.symbols.fns {
        if f.def.is_test || !ctx.enabled(f.file, LOCK_ORDER) {
            continue;
        }
        direct[f.id] = f.def.direct_locks.iter().cloned().collect();
    }
    let trans = transitive_union(graph, &direct);

    // Edge map: (held, acquired) -> first witness. Replaying the
    // summaries' ordered event lists in function order preserves the
    // first-witness-wins semantics of the original interleaved walk.
    let mut edges: BTreeMap<(String, String), EdgeWitness> = BTreeMap::new();
    for f in &ctx.symbols.fns {
        if f.def.is_test || !ctx.enabled(f.file, LOCK_ORDER) {
            continue;
        }
        for event in &f.def.lock_events {
            match event {
                LockEvent::Direct { held, acquired, pos, note } => {
                    for h in held {
                        if h != acquired {
                            edges.entry((h.clone(), acquired.clone())).or_insert_with(|| {
                                EdgeWitness {
                                    file: f.file,
                                    pos: *pos,
                                    fn_name: f.qual_name(),
                                    note: note.clone(),
                                }
                            });
                        }
                    }
                }
                LockEvent::Call { pos, held } => {
                    // Everything the callee may acquire is acquired
                    // while our guards are held. Matching resolved call
                    // sites by position mirrors the v2 walk exactly
                    // (including its dedup-by-callee site list).
                    for site in &graph.edges[f.id] {
                        if site.pos != *pos {
                            continue;
                        }
                        let callee = &ctx.symbols.fns[site.callee];
                        for lock in &trans[site.callee] {
                            for h in held {
                                if h != lock {
                                    edges.entry((h.clone(), lock.clone())).or_insert_with(|| {
                                        EdgeWitness {
                                            file: f.file,
                                            pos: *pos,
                                            fn_name: f.qual_name(),
                                            note: format!(
                                                "via call to `{}` which acquires `{lock}`",
                                                callee.qual_name()
                                            ),
                                        }
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Cycle detection over the lock graph.
    let adj: BTreeMap<&str, Vec<&str>> = {
        let mut m: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (from, to) in edges.keys() {
            m.entry(from).or_default().push(to);
        }
        m
    };
    let reachable = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if seen.insert(x) {
                if let Some(next) = adj.get(x) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    let keys: Vec<(String, String)> = edges.keys().cloned().collect();
    for (a, b) in keys {
        if a == b {
            continue; // self-edge: re-acquisition, not an order cycle
        }
        if !reachable(&b, &a) {
            continue;
        }
        let pair = if a < b { (a.clone(), b.clone()) } else { (b.clone(), a.clone()) };
        if !reported.insert(pair) {
            continue;
        }
        let w_ab = &edges[&(a.clone(), b.clone())];
        let back = edges
            .get(&(b.clone(), a.clone()))
            .cloned()
            .or_else(|| {
                // Longer cycle: find the first edge out of `b` on a path
                // back to `a` for the counter-witness.
                edges
                    .iter()
                    .find(|((from, to), _)| from == &b && reachable(to, &a))
                    .map(|(_, w)| w.clone())
            });
        let counter = match &back {
            Some(w) => format!(
                "counter-witness: `{}` acquires `{}` while holding `{}` at {}:{}:{}",
                w.fn_name,
                a,
                b,
                ctx.files[w.file].path,
                w.pos.line,
                w.pos.col
            ),
            None => "counter-witness chain spans multiple functions".to_string(),
        };
        let msg = format!(
            "lock-order cycle between `{a}` and `{b}`: `{}` acquires `{b}` while holding `{a}` ({}); {counter} — a concurrent interleaving deadlocks",
            w_ab.fn_name, w_ab.note,
        );
        let (file, pos) = (w_ab.file, w_ab.pos);
        ctx.emit(LOCK_ORDER, file, pos, msg);
    }
}

// ---------------------------------------------------------------------
// no-unchecked-arith
// ---------------------------------------------------------------------

fn unchecked_arith(ctx: &mut Ctx<'_>) {
    for f in &ctx.symbols.fns {
        if f.def.is_test || !ctx.enabled(f.file, NO_UNCHECKED_ARITH) {
            continue;
        }
        for site in &f.def.arith_sites {
            let msg = format!(
                "unchecked `{}` on a value derived from untrusted stream bytes in `{}`; use `wrapping_*`/`checked_*`/`saturating_*` or widen first (`u64::from(…)` / `as u64`)",
                site.what,
                f.qual_name()
            );
            ctx.emit(NO_UNCHECKED_ARITH, f.file, site.pos, msg);
        }
    }
}

// ---------------------------------------------------------------------
// float-determinism
// ---------------------------------------------------------------------

fn float_determinism(ctx: &mut Ctx<'_>) {
    for f in &ctx.symbols.fns {
        if f.def.is_test || !ctx.enabled(f.file, FLOAT_DET) {
            continue;
        }
        for pos in &f.def.float_sites {
            let msg = format!(
                "`partial_cmp` in `{}` is NaN-unstable (returns `None`, tempting `unwrap`, and orders NaN inconsistently); use `f64::total_cmp` / `f32::total_cmp` or compare integer keys",
                f.qual_name()
            );
            ctx.emit(FLOAT_DET, f.file, *pos, msg);
        }
    }
}

// ---------------------------------------------------------------------
// taint-unchecked-flow
// ---------------------------------------------------------------------

/// The argument index a caller's positional argument maps to in the
/// callee's parameter list: method callees with a `self` receiver shift
/// positional parameters by one.
fn callee_param_index(cr: &CallRef, callee_has_self: bool, arg: usize) -> usize {
    match cr {
        CallRef::Method { .. } if callee_has_self => arg + 1,
        _ => arg,
    }
}

fn taint_flow(ctx: &mut Ctx<'_>, resolved: &[Vec<Vec<usize>>]) {
    let n = ctx.symbols.fns.len();

    // Fixpoint 1: which functions return untrusted values. Seeded by
    // direct `return source` summaries, propagated through call returns
    // (`fn a() -> u32 { b() }` is tainted when `b` is). Bounded by the
    // function count — each round grows the set or the loop stops.
    let mut rt: Vec<bool> = ctx.symbols.fns.iter().map(|f| f.def.returns_taint).collect();
    for _ in 0..=n {
        let mut changed = false;
        for f in &ctx.symbols.fns {
            if rt[f.id] {
                continue;
            }
            let taints = f
                .def
                .taint_return_calls
                .iter()
                .any(|&ci| resolved[f.id][ci].iter().any(|&c| rt[c]));
            if taints {
                rt[f.id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Fixpoint 2: which parameters reach a sink, with a witness chain.
    // `psinks[f][p]` = (sink description, qualified call chain from `f`
    // down to the sink). Seeded by intra-function parameter sinks,
    // propagated backwards through parameter forwarding.
    let mut psinks: Vec<BTreeMap<usize, (String, String)>> = vec![BTreeMap::new(); n];
    for f in &ctx.symbols.fns {
        for ps in &f.def.param_sinks {
            psinks[f.id].entry(ps.param).or_insert((ps.sink.clone(), f.qual_name()));
        }
    }
    for _ in 0..=n {
        let mut changed = false;
        for f in &ctx.symbols.fns {
            for pkc in &f.def.param_sink_calls {
                if psinks[f.id].contains_key(&pkc.param) {
                    continue;
                }
                let cr = &f.def.calls[pkc.call];
                let hit = resolved[f.id][pkc.call].iter().find_map(|&c| {
                    let idx = callee_param_index(
                        cr,
                        ctx.symbols.fns[c].def.has_self_param,
                        pkc.callee_param,
                    );
                    psinks[c].get(&idx).cloned()
                });
                if let Some((sink, chain)) = hit {
                    let chain = format!("{} → {chain}", f.qual_name());
                    psinks[f.id].insert(pkc.param, (sink, chain));
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Emission. All three flow kinds share one message shape so the
    // remedy reads the same wherever the flow was cut.
    let mut found: Vec<(usize, Pos, String, String, String)> = Vec::new();
    for f in &ctx.symbols.fns {
        if f.def.is_test || !ctx.enabled(f.file, TAINT_FLOW) {
            continue;
        }
        // Source and sink in the same function.
        for tl in &f.def.taint_locals {
            found.push((f.file, tl.pos, tl.src.clone(), tl.sink.clone(), f.qual_name()));
        }
        // Sink fed by a call whose resolved callee returns taint.
        for tc in &f.def.taint_call_flows {
            let Some(&callee) = resolved[f.id][tc.call].iter().find(|&&c| rt[c]) else {
                continue;
            };
            let callee_q = ctx.symbols.fns[callee].qual_name();
            found.push((
                f.file,
                tc.pos,
                format!("the return of `{callee_q}`"),
                tc.sink.clone(),
                format!("{} → {callee_q}", f.qual_name()),
            ));
        }
        // Tainted argument handed to a callee whose parameter reaches a
        // sink (possibly through further forwarding).
        for ta in &f.def.tainted_args {
            let src = match &ta.src {
                TaintSrc::Direct(s) => s.clone(),
                TaintSrc::FromCall(j) => {
                    let Some(&c) = resolved[f.id][*j].iter().find(|&&c| rt[c]) else {
                        continue;
                    };
                    format!("the return of `{}`", ctx.symbols.fns[c].qual_name())
                }
            };
            let cr = &f.def.calls[ta.call];
            let hit = resolved[f.id][ta.call].iter().find_map(|&c| {
                let idx =
                    callee_param_index(cr, ctx.symbols.fns[c].def.has_self_param, ta.arg);
                psinks[c].get(&idx).cloned()
            });
            if let Some((sink, chain)) = hit {
                found.push((f.file, ta.pos, src, sink, format!("{} → {chain}", f.qual_name())));
            }
        }
    }
    for (file, pos, src, sink, chain) in found {
        let msg = format!(
            "untrusted value from {src} flows into {sink} with no bounds check on the way (flow: `{chain}`); bound it with an explicit comparison or `try_from`/`checked_*` first"
        );
        ctx.emit(TAINT_FLOW, file, pos, msg);
    }
}

// ---------------------------------------------------------------------
// loop-progress
// ---------------------------------------------------------------------

fn loop_progress(ctx: &mut Ctx<'_>, reach: &Reachability) {
    for f in &ctx.symbols.fns {
        if f.def.is_test || !reach.hot[f.id] || !ctx.enabled(f.file, LOOP_PROGRESS) {
            continue;
        }
        for site in &f.def.stalled_loops {
            let chain = reach.chain_names(ctx.symbols, f.id);
            let msg = format!(
                "`{}` loop without a progress witness on the hot path `{chain}`: no cursor advance, drain call or counter update found, so a malformed stream can spin it forever; advance a cursor every iteration or bound the loop",
                site.what
            );
            ctx.emit(LOOP_PROGRESS, f.file, site.pos, msg);
        }
    }
}

// ---------------------------------------------------------------------
// no-swallowed-error
// ---------------------------------------------------------------------

fn swallowed_errors(ctx: &mut Ctx<'_>, resolved: &[Vec<Vec<usize>>]) {
    for f in &ctx.symbols.fns {
        if f.def.is_test || !ctx.enabled(f.file, NO_SWALLOWED_ERROR) {
            continue;
        }
        for d in &f.def.discards {
            let judged = match d.call {
                // Channel send/recv: the `Result` is the disconnect
                // signal; discarding it is never benign.
                None => Some(format!(
                    "discarded `Result` of {} in `{}`: a channel error means the peer hung up, and ignoring it turns shutdown into a hang",
                    d.what,
                    f.qual_name()
                )),
                Some(ci) => resolved[f.id][ci]
                    .iter()
                    .find(|&&c| ctx.symbols.fns[c].def.returns_result)
                    .map(|&c| {
                        format!(
                            "discarded `Result` of {} in `{}`: `{}` can fail, and this swallows the error path",
                            d.what,
                            f.qual_name(),
                            ctx.symbols.fns[c].qual_name()
                        )
                    }),
            };
            if let Some(msg) = judged {
                let msg = format!(
                    "{msg}; handle the error or suppress with a reasoned `allow({NO_SWALLOWED_ERROR})`"
                );
                ctx.emit(NO_SWALLOWED_ERROR, f.file, d.pos, msg);
            }
        }
    }
}

// ---------------------------------------------------------------------
// shared-state-discipline
// ---------------------------------------------------------------------

fn shared_state(ctx: &mut Ctx<'_>) {
    for f in &ctx.symbols.fns {
        if f.def.is_test || !ctx.enabled(f.file, SHARED_STATE) {
            continue;
        }
        for spawn in &f.def.spawns {
            for cap in &spawn.captures {
                // Capture candidates are bare names; only ones that
                // resolve to a shared-ownership binding of the spawning
                // function matter, and only the hazardous kinds fire.
                let Some(sv) = f.def.shared_vals.iter().find(|sv| sv.name == cap.name) else {
                    continue;
                };
                if !sv.kind.is_spawn_hazard() {
                    continue;
                }
                let hazard = match sv.kind {
                    SharedKind::Rc => {
                        "`Rc`'s reference count is not atomic, so a clone or drop on the spawned thread corrupts it"
                    }
                    _ => {
                        "`RefCell`/`Cell` interior mutability has no internal synchronization, so concurrent access is a data race"
                    }
                };
                let msg = format!(
                    "`{}` ({}, created at line {}) crosses a spawn boundary in `{}`: the closure spawned here captures it (first use at line {}) while the spawning thread keeps its own handle — {hazard}; share it through `Arc<Mutex<…>>`/`Arc<RwLock<…>>`/an atomic, or move ownership over a channel",
                    sv.name,
                    sv.kind.describe(),
                    sv.pos.line,
                    f.qual_name(),
                    cap.pos.line,
                );
                ctx.emit(SHARED_STATE, f.file, spawn.pos, msg);
            }
        }
    }
}

// ---------------------------------------------------------------------
// guard-across-blocking
// ---------------------------------------------------------------------

fn guard_across_blocking(ctx: &mut Ctx<'_>, graph: &CallGraph) {
    let n = ctx.symbols.fns.len();
    // Fixpoint: does calling this function park the thread, and on
    // what? Seeded by each function's first direct blocking site
    // (`.recv()`, `.join()`, bounded-channel send); propagated through
    // resolved call edges so a guard held across `helper()` is flagged
    // when `helper` eventually blocks. Each entry keeps the rendered
    // blocking operation plus the qualified witness chain down to it.
    let mut blocks: Vec<Option<(String, String)>> = vec![None; n];
    for f in &ctx.symbols.fns {
        if let Some(site) = f.def.blocking.first() {
            blocks[f.id] = Some((site.what.clone(), f.qual_name()));
        }
    }
    for _ in 0..=n {
        let mut changed = false;
        for f in &ctx.symbols.fns {
            if blocks[f.id].is_some() {
                continue;
            }
            let hit = graph.edges[f.id].iter().find_map(|site| blocks[site.callee].clone());
            if let Some((what, chain)) = hit {
                blocks[f.id] = Some((what, format!("{} → {chain}", f.qual_name())));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for f in &ctx.symbols.fns {
        if f.def.is_test || !ctx.enabled(f.file, GUARD_BLOCKING) {
            continue;
        }
        // One finding per call position: the same site can match both a
        // direct blocking summary and a resolved callee; direct wins.
        let mut reported: BTreeSet<(u32, u32)> = BTreeSet::new();
        for event in &f.def.lock_events {
            let LockEvent::Call { pos, held } = event else { continue };
            if held.is_empty() || reported.contains(&(pos.line, pos.col)) {
                continue;
            }
            let guards = held.join("`, `");
            let msg = if let Some(site) = f.def.blocking.iter().find(|s| s.pos == *pos) {
                Some(format!(
                    "lock guard on `{guards}` is held across {} in `{}`: the thread parks while holding the lock, and any thread that must take `{guards}` to make the operation ready deadlocks; drop the guard (scope it or `drop(…)`) before blocking",
                    site.what,
                    f.qual_name(),
                ))
            } else {
                graph
                    .edges[f.id]
                    .iter()
                    .filter(|site| site.pos == *pos)
                    .find_map(|site| blocks[site.callee].as_ref())
                    .map(|(what, chain)| {
                        format!(
                            "lock guard on `{guards}` is held across a call that blocks on {what} (witness: `{} → {chain}`): the thread parks while holding the lock, and any thread that must take `{guards}` to make the operation ready deadlocks; drop the guard before the call",
                            f.qual_name(),
                        )
                    })
            };
            if let Some(msg) = msg {
                reported.insert((pos.line, pos.col));
                ctx.emit(GUARD_BLOCKING, f.file, *pos, msg);
            }
        }
    }
}

// ---------------------------------------------------------------------
// channel-protocol
// ---------------------------------------------------------------------

/// Whether a function is a shutdown/teardown path by name — such paths
/// legitimately fire-and-forget a send to a possibly-gone peer, so
/// `channel-protocol`'s discarded-send check exempts them.
fn shutdown_path(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    ["drop", "shutdown", "close", "finish", "abort", "crash", "inject"]
        .iter()
        .any(|w| n.contains(w))
}

fn channel_protocol(ctx: &mut Ctx<'_>) {
    for f in &ctx.symbols.fns {
        if f.def.is_test || !ctx.enabled(f.file, CHANNEL_PROTOCOL) {
            continue;
        }
        for bind in &f.def.channels {
            // (a) a one-shot reply channel — `sync_channel(1)` — must
            // send at most once; a second send blocks until the peer
            // drains the first, which a reply protocol never does.
            if bind.sync && bind.cap == Some(1) {
                let sends: Vec<_> = f
                    .def
                    .chan_ops
                    .iter()
                    .filter(|op| op.op == ChanOpKind::Send && op.name == bind.tx)
                    .collect();
                if let Some(looped) = sends.iter().find(|op| op.in_loop) {
                    let msg = format!(
                        "`{}` is a one-shot reply channel (`sync_channel(1)` bound at line {}) but is sent inside a loop in `{}`: the second iteration blocks forever once the receiver has taken its single reply; use a fresh reply channel per request or widen the bound",
                        bind.tx,
                        bind.pos.line,
                        f.qual_name(),
                    );
                    ctx.emit(CHANNEL_PROTOCOL, f.file, looped.pos, msg);
                } else if sends.len() > 1 {
                    let msg = format!(
                        "`{}` is a one-shot reply channel (`sync_channel(1)` bound at line {}) but is sent {} times in `{}`: the second send blocks forever once the receiver has taken its single reply; use a fresh reply channel per request or widen the bound",
                        bind.tx,
                        bind.pos.line,
                        sends.len(),
                        f.qual_name(),
                    );
                    ctx.emit(CHANNEL_PROTOCOL, f.file, sends[1].pos, msg);
                }
            }
            // (b) a send sequenced after the paired receiver was
            // dropped can only return `Err(SendError)`.
            if let Some(di) = f
                .def
                .chan_ops
                .iter()
                .position(|op| op.op == ChanOpKind::Drop && op.name == bind.rx)
            {
                let drop_line = f.def.chan_ops[di].pos.line;
                if let Some(late) = f.def.chan_ops[di + 1..]
                    .iter()
                    .find(|op| op.op == ChanOpKind::Send && op.name == bind.tx)
                {
                    let msg = format!(
                        "`{}.send(…)` in `{}` after its receiver `{}` was dropped at line {drop_line}: every send from here on returns `Err(SendError)` and the value is lost; send before dropping the receiver, or drop the sender instead",
                        bind.tx,
                        f.qual_name(),
                        bind.rx,
                    );
                    ctx.emit(CHANNEL_PROTOCOL, f.file, late.pos, msg);
                }
            }
        }
        // (c) `tx.send(v);` in statement position throws the `Result`
        // away without even the `let _ =` shape `no-swallowed-error`
        // covers. Shutdown paths are exempt by name: fire-and-forget to
        // a possibly-gone peer is the correct teardown idiom.
        if shutdown_path(&f.def.name) {
            continue;
        }
        for op in &f.def.chan_ops {
            if op.op == ChanOpKind::Send && op.discarded {
                let msg = format!(
                    "`{}.send(…)` result discarded in statement position in `{}`: a send error means the receiver hung up, which a non-shutdown path must notice (lost detections, silent half-dead fleet); check the `Result` or route through a supervised send",
                    op.name,
                    f.qual_name(),
                );
                ctx.emit(CHANNEL_PROTOCOL, f.file, op.pos, msg);
            }
        }
    }
}
