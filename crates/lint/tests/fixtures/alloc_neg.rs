// Fixture: allocation-free steady state plus look-alikes the rule must
// not flag: capacity-zero constructors (allocation-free by std's
// guarantee), clearing / overwriting pre-reserved scratch, and growth
// calls in functions that are not reachable from any entry point.
// vdsms-lint: entry
fn ingest(state: &mut State, frame: Frame) {
    let mut spare: Vec<u64> = Vec::new();
    state.scratch.clear();
    for (i, v) in frame.cells.iter().enumerate() {
        state.scratch[i] = *v;
    }
    let _ = spare.pop();
}

fn cold_rebuild(state: &mut State) {
    state.ids.push(1);
    state.names.push(String::from("cold"));
}
