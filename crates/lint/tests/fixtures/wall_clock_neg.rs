// Fixture: time *types* and durations are fine; only `::now()` reads are
// forbidden. Timestamps arrive as input.
use std::time::{Duration, Instant};

fn deadline(started: Instant, budget: Duration) -> Instant {
    started + budget
}
