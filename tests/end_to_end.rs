//! End-to-end integration: synthetic workload → codec → features →
//! engine → scored detections, across method variants.

use vdsms::core::{DetectorConfig, Order, Query, QuerySet, Representation};
use vdsms::core::Detector;
use vdsms::features::FeatureConfig;
use vdsms::workload::{
    compose_stream, fingerprint_stream, score, ClipLibrary, StreamKind, WorkloadSpec,
};

fn test_spec() -> WorkloadSpec {
    WorkloadSpec {
        num_clips: 8,
        inserted: 5,
        clip_min_s: 15.0,
        clip_max_s: 30.0,
        base_seconds: 240.0,
        ..WorkloadSpec::tiny(42)
    }
}

struct Setup {
    lib: ClipLibrary,
    cells: Vec<(u64, u64)>,
    truth: Vec<vdsms::workload::GtInterval>,
    query_cells: Vec<Vec<u64>>,
    w_frames: u64,
    w_keyframes: usize,
}

fn setup(kind: StreamKind) -> Setup {
    let spec = test_spec();
    let lib = ClipLibrary::new(spec.clone());
    let fc = FeatureConfig::default();
    let stream = compose_stream(&lib, kind);
    let fp = fingerprint_stream(&stream, &fc);
    let query_cells =
        (0..lib.len() as u32).map(|id| lib.query_fingerprints(id, &fc)).collect();
    Setup {
        cells: fp.cell_ids,
        truth: stream.truth,
        query_cells,
        w_frames: spec.window_frames(5.0),
        w_keyframes: spec.window_keyframes(5.0),
        lib,
    }
}

fn run_variant(s: &Setup, order: Order, rep: Representation, use_index: bool, delta: f64) -> vdsms::workload::PrecisionRecall {
    let cfg = DetectorConfig {
        delta,
        window_keyframes: s.w_keyframes,
        order,
        representation: rep,
        use_index,
        ..Default::default()
    };
    let family = Detector::family_for(&cfg);
    let queries = QuerySet::from_queries(
        (0..s.lib.len() as u32)
            .map(|id| Query::from_cell_ids(id, &family, &s.query_cells[id as usize]))
            .collect(),
    );
    let mut det = Detector::new(cfg, queries);
    let dets = det.run(s.cells.iter().copied());
    score(&dets, &s.truth, s.w_frames)
}

#[test]
fn vs1_all_variants_reach_high_accuracy() {
    let s = setup(StreamKind::Vs1);
    for order in [Order::Sequential, Order::Geometric] {
        for rep in [Representation::Bit, Representation::Sketch] {
            for use_index in [true, false] {
                let pr = run_variant(&s, order, rep, use_index, 0.7);
                assert!(
                    pr.precision >= 0.95,
                    "{order:?}/{rep:?}/ix={use_index}: precision {:?}",
                    pr
                );
                assert!(
                    pr.recall >= 0.8,
                    "{order:?}/{rep:?}/ix={use_index}: recall {:?}",
                    pr
                );
            }
        }
    }
}

#[test]
fn vs2_bit_sequential_detects_tampered_copies() {
    let s = setup(StreamKind::Vs2);
    let pr = run_variant(&s, Order::Sequential, Representation::Bit, true, 0.6);
    assert!(pr.precision >= 0.9, "{pr:?}");
    assert!(pr.recall >= 0.6, "{pr:?}");
}

#[test]
fn sketch_and_bit_agree_on_vs1_detection_outcome() {
    // Bit signatures are a lossless re-encoding of the sketch relations:
    // per-copy recall must be identical for the NoIndex sequential
    // variants.
    let s = setup(StreamKind::Vs1);
    let a = run_variant(&s, Order::Sequential, Representation::Bit, false, 0.7);
    let b = run_variant(&s, Order::Sequential, Representation::Sketch, false, 0.7);
    assert_eq!(a.found, b.found);
    assert_eq!(a.detections, b.detections);
}

#[test]
fn recall_is_monotone_decreasing_in_delta() {
    let s = setup(StreamKind::Vs2);
    let mut last = f64::INFINITY;
    for delta in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let pr = run_variant(&s, Order::Sequential, Representation::Bit, true, delta);
        assert!(
            pr.recall <= last + 1e-9,
            "recall must not rise with δ: {} at δ={delta}, was {last}", pr.recall
        );
        last = pr.recall;
    }
}

#[test]
fn geometric_never_beats_sequential_recall_by_much() {
    // Geometric tests a subset of suffixes; its recall should be at or
    // below sequential's (the paper's Figs. 7-8 trade-off).
    let s = setup(StreamKind::Vs1);
    let seq = run_variant(&s, Order::Sequential, Representation::Bit, true, 0.8);
    let geo = run_variant(&s, Order::Geometric, Representation::Bit, true, 0.8);
    assert!(geo.recall <= seq.recall + 0.21, "geo {:?} vs seq {:?}", geo, seq);
}
