//! One module per table/figure of the paper's Section VI.
//!
//! Each `run` function takes the shared [`crate::Ctx`] and the [`Scale`]
//! and returns one or more [`crate::Table`]s with the same rows/series the
//! paper reports. Absolute numbers differ (different hardware, synthetic
//! substrate); the comparative *shapes* are the reproduction target — see
//! `EXPERIMENTS.md`.

pub mod ablation;
pub mod attack_matrix;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14_15;
pub mod fig6;
pub mod fig7_8;
pub mod fig9;
pub mod table2;
pub mod tamper_sweep;

use crate::{Ctx, Scale, Table};

/// Every experiment id, in paper order.
pub const ALL: &[&str] = &[
    "table2", "fig6", "fig7", "fig8", "fig9", "fig10a", "fig10b", "fig11", "fig12", "fig13",
    "fig14", "fig15", "ablation_partition", "ablation_pruning", "tamper_sweep", "attack_matrix",
];

/// Dispatch an experiment by id. `fig7`/`fig8` share one run (one sweep
/// produces both series), as do `fig14`/`fig15`'s kin.
pub fn run(id: &str, ctx: &mut Ctx, scale: Scale) -> Vec<Table> {
    match id {
        "table2" => vec![table2::run(ctx)],
        "fig6" => vec![fig6::run(ctx, scale)],
        "fig7" | "fig8" => fig7_8::run(ctx, scale),
        "fig9" => vec![fig9::run(ctx, scale)],
        "fig10a" => vec![fig10::run_delta(ctx, scale)],
        "fig10b" => vec![fig10::run_window(ctx, scale)],
        "fig11" => vec![fig11::run(ctx, scale)],
        "fig12" => vec![fig12::run(ctx, scale)],
        "fig13" => vec![fig13::run(ctx, scale)],
        "fig14" => vec![fig14_15::run_seq(ctx)],
        "fig15" => vec![fig14_15::run_warp(ctx)],
        "ablation_partition" => vec![ablation::run_partition(ctx)],
        "ablation_pruning" => vec![ablation::run_pruning(ctx, scale)],
        "tamper_sweep" => vec![tamper_sweep::run(ctx)],
        "attack_matrix" => vec![attack_matrix::run(ctx, scale)],
        other => panic!("unknown experiment id: {other}"),
    }
}
