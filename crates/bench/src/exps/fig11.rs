//! Figure 11 — precision and recall vs the basic window size `w`, on VS2
//! (BitIndex + Sequential).
//!
//! Expected shape: both degrade as `w` grows — long windows straddle copy
//! boundaries and dilute the candidate's cell-id set with background
//! content.

use crate::table::f3;
use crate::{Ctx, Scale, Table};
use vdsms_core::{DetectorConfig, Order, Representation};
use vdsms_workload::StreamKind;

/// Run the sweep.
pub fn run(ctx: &mut Ctx, scale: Scale) -> Table {
    let m = ctx.library().len();
    let mut table = Table::new(
        "Figure 11 — precision & recall vs basic window w (VS2, BitIndex/Seq)",
        &["w (s)", "precision", "recall", "detections"],
    );
    table.note(format!("m = {m} queries, K = 800, δ = 0.7"));
    for w in scale.w_sweep() {
        let cfg = DetectorConfig {
            window_keyframes: ctx.spec().window_keyframes(w),
            order: Order::Sequential,
            representation: Representation::Bit,
            use_index: true,
            ..Default::default()
        };
        let res = ctx.run_engine(StreamKind::Vs2, cfg, m);
        table.push(vec![
            format!("{w}"),
            f3(res.pr.precision),
            f3(res.pr.recall),
            res.pr.detections.to_string(),
        ]);
    }
    table
}
