//! # vdsms-features — frame fingerprints from the compressed domain
//!
//! Section III-A of the paper, both phases:
//!
//! 1. **Feature extraction** — each key frame's per-block DC coefficients
//!    (from `vdsms-codec`'s partial decoder) are averaged over `D` equal
//!    spatial regions, min–max normalized to `[0, 1]` (the paper's Eq. 1 —
//!    this removes brightness/contrast edits), and `d` of the `D` values
//!    are selected.
//! 2. **Dimensionality reduction** — the `d`-dimensional feature is mapped
//!    to a single *cell id* via the paper's grid–pyramid partition
//!    (Fig. 1): each dimension is cut into `u` grid slices, and each grid
//!    cell is further split into `2d` pyramid cells, giving `2·d·u^d` cells
//!    and `id = 2d·O_g(f) + O_p(f)`.
//!
//! The pyramid component is the robustness mechanism: a small coefficient
//! perturbation only changes the id if it changes `argmax_j |V_j − C_j|`,
//! which happens with probability ≈ k/D for k rank flips (paper's
//! analysis), whereas a pure grid id flips whenever *any* dimension crosses
//! a slice boundary.

#![forbid(unsafe_code)]

pub mod extract;
pub mod ingest;
pub mod partition;

pub use extract::{
    region_averages, select_dims, select_dims_into, FeatureConfig, FeatureExtractor,
    FingerprintScratch, PlanCache, RegionPlan,
};
pub use ingest::FingerprintStream;
pub use partition::{normalize, normalize_in_place, GridPyramid};

/// A frame fingerprint: the cell id of the frame's feature vector.
pub type CellId = u64;
