//! Table II — precision and recall of the grid–pyramid partition for
//! `u ∈ [2,7] × d ∈ [3,7]`, measured with the exact membership test
//! (no min-hash): each original clip `A[i]` queries the edited library
//! `B`, and `B[j]` is retrieved when the exact Jaccard similarity of the
//! two clips' cell-id sets reaches δ.

use crate::table::f3;
use crate::{Ctx, Table};
use std::collections::HashSet;
use vdsms_codec::DcFrame;
use vdsms_features::{FeatureConfig, FeatureExtractor};

/// δ for the membership test (the paper's default threshold).
const DELTA: f64 = 0.7;

fn cell_set(dcs: &[DcFrame], extractor: &FeatureExtractor) -> HashSet<u64> {
    dcs.iter().map(|d| extractor.fingerprint(d)).collect()
}

fn jaccard(a: &HashSet<u64>, b: &HashSet<u64>) -> f64 {
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Run the sweep.
pub fn run(ctx: &mut Ctx) -> Table {
    let base = *ctx.features();
    let (originals, edited) = ctx.clip_dc_frames().clone();
    let m = originals.len();

    let mut table = Table::new(
        "Table II — precision (p) and recall (r) vs partition u and dimensionality d",
        &["d", "u=2 p", "u=2 r", "u=3 p", "u=3 r", "u=4 p", "u=4 r", "u=5 p", "u=5 r", "u=6 p",
          "u=6 r", "u=7 p", "u=7 r"],
    );
    table.note(format!("membership test (exact Jaccard), δ = {DELTA}, {m} clip pairs"));

    for d in 3..=7usize {
        let mut row = vec![d.to_string()];
        for u in 2..=7u32 {
            let extractor = FeatureExtractor::new(FeatureConfig { d, u, ..base });
            let a_sets: Vec<HashSet<u64>> =
                originals.iter().map(|dcs| cell_set(dcs, &extractor)).collect();
            let b_sets: Vec<HashSet<u64>> =
                edited.iter().map(|dcs| cell_set(dcs, &extractor)).collect();
            let mut retrieved = 0usize;
            let mut correct = 0usize;
            let mut recalled = 0usize;
            for (i, a) in a_sets.iter().enumerate() {
                let mut self_found = false;
                for (j, b) in b_sets.iter().enumerate() {
                    if jaccard(a, b) >= DELTA {
                        retrieved += 1;
                        if i == j {
                            correct += 1;
                            self_found = true;
                        }
                    }
                }
                if self_found {
                    recalled += 1;
                }
            }
            let precision = if retrieved == 0 { 1.0 } else { correct as f64 / retrieved as f64 };
            let recall = recalled as f64 / m as f64;
            row.push(f3(precision));
            row.push(f3(recall));
        }
        table.push(row);
    }
    table
}
