//! Figure 6 — CPU time vs the number of hash functions `K`, for the Bit
//! and Sketch representations under Sequential and Geometric combination
//! orders (all with the HQ query index, as in the paper's setup), on VS1.
//!
//! Expected shape: Sketch costs grow steeply with K (every combine and
//! compare is K u64 operations); Bit grows far more slowly (K/32-word ORs
//! + popcounts); Geometric helps Sketch a lot and Bit only a little.

use crate::table::f3;
use crate::{Ctx, Scale, Table};
use vdsms_core::{DetectorConfig, Order, Representation};
use vdsms_workload::StreamKind;

/// Run the sweep.
pub fn run(ctx: &mut Ctx, scale: Scale) -> Table {
    let m = ctx.library().len();
    let w_kf = ctx.spec().window_keyframes(5.0);
    let decode = ctx.decode_seconds(StreamKind::Vs1);

    let mut table = Table::new(
        "Figure 6 — CPU time (s) vs number of hash functions K (VS1)",
        &["K", "Bit/Seq", "Bit/Geo", "Sketch/Seq", "Sketch/Geo"],
    );
    table.note(format!(
        "m = {m} queries, w = 5 s, δ = 0.7, with HQ index; times include {decode:.2} s of partial decoding"
    ));

    for k in scale.k_sweep_cpu() {
        let mut row = vec![k.to_string()];
        for (rep, order) in [
            (Representation::Bit, Order::Sequential),
            (Representation::Bit, Order::Geometric),
            (Representation::Sketch, Order::Sequential),
            (Representation::Sketch, Order::Geometric),
        ] {
            let cfg = DetectorConfig {
                k,
                window_keyframes: w_kf,
                order,
                representation: rep,
                use_index: true,
                ..Default::default()
            };
            let res = ctx.run_engine(StreamKind::Vs1, cfg, m);
            row.push(f3(res.engine_seconds + decode));
        }
        table.push(row);
    }
    table
}
