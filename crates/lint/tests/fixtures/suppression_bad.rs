// Fixture: malformed directives. Expected findings: invalid-suppression x3
// (missing reason, unknown rule, attempt to allow invalid-suppression)
// plus the surviving no-panic-hot-path finding the first directive failed
// to cover.
fn spawn(pool: &Pool) -> Worker {
    // vdsms-lint: allow(no-panic-hot-path)
    pool.spawn().expect("spawn must succeed at startup")
}

// vdsms-lint: allow(made-up-rule) reason="no such rule"
// vdsms-lint: allow(invalid-suppression) reason="nice try"
