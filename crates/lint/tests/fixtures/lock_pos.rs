// Fixture: std locks. Expected findings: lock-discipline x2
// (std::sync::Mutex in the use-group, std::sync::Condvar in a type
// path). Nested acquisition is no longer a per-file smell — cross-order
// cycles are caught by the workspace `lock-order` analysis instead.
use std::sync::{Arc, Mutex};

fn wait(c: &std::sync::Condvar) {}

fn transfer(a: &Shared, b: &Shared) {
    let from = a.inner.lock();
    let to = b.inner.lock();
    to.push(from.pop());
}
