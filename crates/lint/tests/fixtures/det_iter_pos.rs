// Fixture: order-randomized collections in production code. Expected
// findings: deterministic-iteration x3 (use path, type position, module
// path).
use std::collections::HashMap;

struct Index {
    rows: HashMap<u64, Vec<u32>>,
}

fn bucket(e: std::collections::hash_map::Entry<u64, u32>) {}
