//! Live multi-stream monitoring with online query churn.
//!
//! The paper's setting has "many concurrent video streams and for each
//! stream ... many continuous video copy monitoring queries", with
//! subscriptions added and removed online (Section V-C.1). This example
//! runs one monitor per stream on its own thread, shares the query
//! library behind a `parking_lot::Mutex`, subscribes a new query while
//! the streams are already running, and unsubscribes another.
//!
//! ```text
//! cargo run --release --example live_subscription
//! ```

use parking_lot::Mutex;
use std::sync::Arc;
use vdsms::codec::{DcFrame, Encoder, EncoderConfig, PartialDecoder};
use vdsms::video::source::{ClipGenerator, SourceSpec};
use vdsms::video::{Clip, Fps};
use vdsms::{DetectorConfig, Monitor, MonitorBuilder};

const ENC: EncoderConfig = EncoderConfig { gop: 5, quality: 80, motion_search: true };

fn spec(seed: u64) -> SourceSpec {
    SourceSpec {
        width: 176,
        height: 120,
        fps: Fps::integer(10),
        seed,
        min_scene_s: 2.0,
        max_scene_s: 6.0,
        motifs: None,
    }
}

fn make_monitor() -> Monitor {
    MonitorBuilder::new()
        .detector(DetectorConfig { window_keyframes: 6, ..Default::default() })
        .query_encoder(ENC)
        .build()
}

fn main() {
    // Query library: three protected clips.
    let clips: Vec<Clip> = (0..3u64).map(|i| ClipGenerator::new(spec(500 + i)).clip(12.0)).collect();

    // Two broadcast streams. Stream A airs clip 0 early and clip 2 late;
    // stream B airs clip 1.
    let mut stream_a = ClipGenerator::new(spec(70)).clip(30.0);
    stream_a.append(clips[0].clone());
    stream_a.append(ClipGenerator::new(spec(71)).clip(30.0));
    stream_a.append(clips[2].clone());
    stream_a.append(ClipGenerator::new(spec(72)).clip(15.0));

    let mut stream_b = ClipGenerator::new(spec(80)).clip(40.0);
    stream_b.append(clips[1].clone());
    stream_b.append(ClipGenerator::new(spec(81)).clip(30.0));

    let bitstreams =
        [Encoder::encode_clip(&stream_a, ENC), Encoder::encode_clip(&stream_b, ENC)];

    // One monitor per stream; initially only clips 0 and 1 are subscribed.
    let monitors: Vec<Arc<Mutex<Monitor>>> = (0..2)
        .map(|_| {
            let mut m = make_monitor();
            m.subscribe_clip(0, &clips[0]);
            m.subscribe_clip(1, &clips[1]);
            Arc::new(Mutex::new(m))
        })
        .collect();

    // Drive each stream on its own thread, key frame by key frame. Halfway
    // through, the main thread subscribes clip 2 everywhere and
    // unsubscribes clip 1 — while the streams keep flowing.
    let mut handles = Vec::new();
    for (sid, bytes) in bitstreams.into_iter().enumerate() {
        let monitor = Arc::clone(&monitors[sid]);
        handles.push(std::thread::spawn(move || {
            let mut decoder = PartialDecoder::new(&bytes).expect("valid stream");
            let mut detections = Vec::new();
            // Pooled decode: one DcFrame per thread, reused every key frame.
            let mut frame = DcFrame::empty();
            while decoder.next_dc_frame_into(&mut frame).expect("valid stream") {
                detections.extend(monitor.lock().push_dc_frame(&frame));
            }
            detections.extend(monitor.lock().finish());
            (sid, detections)
        }));
    }

    // Online churn while the threads are running.
    for m in &monitors {
        let mut m = m.lock();
        m.subscribe_clip(2, &clips[2]);
        m.unsubscribe(1);
    }
    println!("subscribed clip 2 and unsubscribed clip 1 online\n");

    let mut total = 0;
    for h in handles {
        let (sid, detections) = h.join().expect("stream thread");
        println!("stream {sid}: {} detections", detections.len());
        for d in &detections {
            println!(
                "  query {} at frames {}..{} (similarity {:.2})",
                d.query_id, d.start_frame, d.end_frame, d.similarity
            );
        }
        total += detections.len();
    }
    // Clip 0 airs at the very start of stream A and must always be found;
    // clip 2's detection depends on whether the subscription won the race
    // with the stream position — that is the nature of live churn.
    assert!(total >= 1, "at least clip 0's airing must be detected");
    println!("\ndone: {total} detections across 2 concurrent streams");
}
