// channel-protocol positive fixture. Expected findings: 4 — a one-shot
// reply channel sent twice, one sent in a loop, a send after the
// receiver was dropped, and a send result discarded in statement
// position on a non-shutdown path.

use std::sync::mpsc::{self, Sender};

pub fn double_reply() {
    let (tx, rx) = mpsc::sync_channel(1);
    let _ = tx.send(1);
    let _ = tx.send(2);
    let _ = rx.recv();
}

pub fn looped_reply(n: u64) {
    let (tx, rx) = mpsc::sync_channel(1);
    for i in 0..n {
        let _ = tx.send(i);
    }
    let _ = rx.recv();
}

pub fn send_into_void() {
    let (tx, rx) = mpsc::channel();
    let _ = tx.send(1);
    drop(rx);
    let _ = tx.send(2);
}

pub fn fire_and_forget(tx: &Sender<u64>) {
    tx.send(7);
}
