#!/usr/bin/env bash
# Local CI: offline build, full test suite, lints. Mirrors what the
# tier-1 gate runs, plus clippy.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== benches compile =="
cargo bench --no-run -q

echo "== static-analysis gate (vdsms-lint) =="
cargo run -p vdsms-lint --release

echo "== zero-alloc steady state (release) =="
cargo test --release -q --test alloc_steady_state

echo "== decoder fuzz (bounded, release) =="
cargo test --release -q --test decoder_fuzz

echo "== fault-injection smoke (vdsms monitor --inject-faults) =="
cargo build --release -q -p vdsms-cli
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./target/release/vdsms generate --seed 300 --seconds 10 --out "$tmp/q.vdsm"
./target/release/vdsms generate --seed 920 --seconds 20 --out "$tmp/s.vdsm"
./target/release/vdsms sketch --window-keyframes 6 "$tmp/q.vdsm" --out "$tmp/q.vdsq"
./target/release/vdsms monitor --queries "$tmp/q.vdsq" --window-keyframes 6 --recover \
  --inject-faults "seed=7,flip=0.05,drop=0.02,delete=0.01,insert=0.01" \
  "$tmp/s.vdsm" > "$tmp/out.txt" 2> "$tmp/err.txt" \
  || { echo "fault-injection smoke failed"; cat "$tmp/out.txt" "$tmp/err.txt"; exit 1; }
grep -q "fault-injected" "$tmp/err.txt" \
  || { echo "expected a degraded-stream summary on stderr"; cat "$tmp/err.txt"; exit 1; }

echo "== attack-matrix smoke + robustness floors (vdsms eval-attacks) =="
# 2 attacks × 2 detectors on a short stream; --check fails the build if
# any cell's recall/precision drops below the committed floor (seed must
# match the floor file — see BENCH_robustness.json).
./target/release/vdsms eval-attacks --seed 7 --profile smoke \
  --check BENCH_robustness.json > "$tmp/matrix.txt" 2> "$tmp/matrix_err.txt" \
  || { echo "attack-matrix floor check failed"; cat "$tmp/matrix.txt" "$tmp/matrix_err.txt"; exit 1; }
grep -q "floor check passed" "$tmp/matrix_err.txt" \
  || { echo "expected a floor-check confirmation"; cat "$tmp/matrix_err.txt"; exit 1; }

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "== rustdoc =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "CI OK"
