//! Micro-benchmarks of the engine's primitive operations — the `C_comp` /
//! `C_comb` terms of the paper's Section IV-B cost model. The Bit-vs-
//! Sketch gap measured here is the mechanism behind Figure 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vdsms_core::BitSig;
use vdsms_sketch::{MinHashFamily, Sketch};

const KS: &[usize] = &[100, 800, 3000];

fn sketch_of(family: &MinHashFamily, base: u64, n: u64) -> Sketch {
    Sketch::from_ids(family, base..base + n)
}

fn bench_sketch_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("sketch");
    g.sample_size(30);
    for &k in KS {
        let family = MinHashFamily::new(k, 1);
        let a = sketch_of(&family, 0, 50);
        let b = sketch_of(&family, 25, 60);

        g.bench_with_input(BenchmarkId::new("build_window_50ids", k), &k, |bench, _| {
            bench.iter(|| Sketch::from_ids(&family, black_box(0u64..50)));
        });
        g.bench_with_input(BenchmarkId::new("combine", k), &k, |bench, _| {
            bench.iter(|| {
                let mut x = a.clone();
                x.combine(black_box(&b));
                x
            });
        });
        g.bench_with_input(BenchmarkId::new("compare", k), &k, |bench, _| {
            bench.iter(|| black_box(&a).equal_count(black_box(&b)));
        });
    }
    g.finish();
}

fn bench_bitsig_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitsig");
    g.sample_size(30);
    for &k in KS {
        let family = MinHashFamily::new(k, 1);
        let q = sketch_of(&family, 0, 50);
        let p1 = sketch_of(&family, 25, 60);
        let p2 = sketch_of(&family, 40, 70);
        let s1 = BitSig::encode(&p1, &q);
        let s2 = BitSig::encode(&p2, &q);

        g.bench_with_input(BenchmarkId::new("encode", k), &k, |bench, _| {
            bench.iter(|| BitSig::encode(black_box(&p1), black_box(&q)));
        });
        g.bench_with_input(BenchmarkId::new("or_combine", k), &k, |bench, _| {
            bench.iter(|| {
                let mut x = s1.clone();
                x.or_with(black_box(&s2));
                x
            });
        });
        g.bench_with_input(BenchmarkId::new("similarity", k), &k, |bench, _| {
            bench.iter(|| black_box(&s1).similarity());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sketch_ops, bench_bitsig_ops);
criterion_main!(benches);
