//! SARIF 2.1.0 output — the interchange format CI dashboards and code
//! hosts ingest for static-analysis results.
//!
//! The emitter produces the minimal valid document: one `run` with the
//! tool's rule catalog (id + short description for every registered
//! rule, so rule metadata is present even when a rule has no findings)
//! and one `result` per diagnostic with a physical location. Output is
//! byte-stable for a given report: rules come from the fixed registry
//! order and results keep the report's canonical (file, line, col,
//! rule) sort.

use crate::diag::Report;
use vdsms_json::Json;

/// SARIF schema pinned by the emitter.
const SARIF_VERSION: &str = "2.1.0";
const SARIF_SCHEMA: &str =
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json";

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Render `report` as a SARIF 2.1.0 document (pretty-printed, trailing
/// newline).
pub fn to_sarif(report: &Report) -> String {
    let rules: Vec<Json> = crate::rules::registry()
        .iter()
        .map(|info| {
            obj(vec![
                ("id", Json::str(info.id)),
                (
                    "shortDescription",
                    obj(vec![("text", Json::str(info.summary))]),
                ),
                ("helpUri", Json::str(format!("vdsms-lint://explain/{}", info.id))),
            ])
        })
        .collect();

    let results: Vec<Json> = report
        .diagnostics
        .iter()
        .map(|d| {
            obj(vec![
                ("ruleId", Json::str(&d.rule)),
                ("level", Json::str("error")),
                ("message", obj(vec![("text", Json::str(&d.message))])),
                (
                    "locations",
                    Json::Arr(vec![obj(vec![(
                        "physicalLocation",
                        obj(vec![
                            (
                                "artifactLocation",
                                obj(vec![("uri", Json::str(&d.file))]),
                            ),
                            (
                                "region",
                                obj(vec![
                                    ("startLine", Json::num(d.line as usize)),
                                    ("startColumn", Json::num(d.col as usize)),
                                    ("snippet", obj(vec![("text", Json::str(&d.snippet))])),
                                ]),
                            ),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();

    let doc = obj(vec![
        ("version", Json::str(SARIF_VERSION)),
        ("$schema", Json::str(SARIF_SCHEMA)),
        (
            "runs",
            Json::Arr(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", Json::str("vdsms-lint")),
                            ("informationUri", Json::str("vdsms-lint://")),
                            ("rules", Json::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", Json::Arr(results)),
            ])]),
        ),
    ]);
    let mut out = doc.to_pretty();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    #[test]
    fn sarif_document_has_schema_rules_and_results() {
        let mut rep = Report { files_scanned: 1, ..Default::default() };
        rep.diagnostics.push(Diagnostic {
            rule: "no-panic-hot-path".into(),
            file: "crates/core/src/x.rs".into(),
            line: 3,
            col: 7,
            message: "`.unwrap()` can panic".into(),
            snippet: "v.unwrap();".into(),
        });
        let text = to_sarif(&rep);
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => panic!("emitter produced invalid JSON: {e}"),
        };
        assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
        let Some([run]) = doc.get("runs").and_then(Json::as_arr) else {
            panic!("expected exactly one run");
        };
        let driver = run.get("tool").and_then(|t| t.get("driver"));
        assert_eq!(
            driver.and_then(|d| d.get("name")).and_then(Json::as_str),
            Some("vdsms-lint")
        );
        // Every registered rule appears in the catalog.
        let rules = driver.and_then(|d| d.get("rules")).and_then(Json::as_arr);
        assert_eq!(rules.map(<[Json]>::len), Some(crate::rules::registry().len()));
        let Some([result]) = run.get("results").and_then(Json::as_arr) else {
            panic!("expected exactly one result");
        };
        assert_eq!(result.get("ruleId").and_then(Json::as_str), Some("no-panic-hot-path"));
        let region = result
            .get("locations")
            .and_then(Json::as_arr)
            .and_then(|l| l.first())
            .and_then(|l| l.get("physicalLocation"))
            .and_then(|p| p.get("region"));
        assert_eq!(
            region.and_then(|r| r.get("startLine")).and_then(Json::as_usize),
            Some(3)
        );
    }

    #[test]
    fn empty_report_is_still_a_valid_run() {
        let text = to_sarif(&Report::default());
        let doc = Json::parse(&text).unwrap_or(Json::Null);
        let results = doc
            .get("runs")
            .and_then(Json::as_arr)
            .and_then(|r| r.first())
            .and_then(|r| r.get("results"))
            .and_then(Json::as_arr);
        assert_eq!(results.map(<[Json]>::len), Some(0));
    }
}
