//! # vdsms-codec — compressed-domain video codec substrate
//!
//! The paper's feature extraction runs in the *compressed domain*: "We
//! partially decode incoming video bit streams to Discrete Cosine (DC)
//! sequence and extract the DC coefficients of key (or I) frames"
//! (Section III-A). Reproducing that claim requires an actual block codec
//! whose bitstream can be *partially* decoded — recovering DC terms while
//! skipping dequantization, inverse DCT and motion compensation.
//!
//! This crate is that substrate, built from scratch:
//!
//! * 8×8 orthonormal DCT-II / inverse DCT ([`dct`]);
//! * JPEG-style quantization with a quality knob ([`quant`]) — re-encoding a
//!   copy at a different quality reproduces the paper's "re-compress with
//!   different settings" perturbation;
//! * zigzag scan + run-length + signed-varint entropy coding ([`zigzag`],
//!   [`bitio`]);
//! * a GOP structure with intra (I) and predicted (P) frames ([`encoder`]);
//! * a **full decoder** (pixel reconstruction) and a **partial decoder**
//!   that touches only I-frame DC terms, skipping P-frames entirely via
//!   frame-length prefixes ([`decoder`]). The asymptotic cost gap between
//!   the two is structural, exactly as in MPEG.
//!
//! The bitstream format is documented in [`bitstream`].

#![forbid(unsafe_code)]

pub mod bitio;
pub mod bitstream;
pub mod block;
pub mod dct;
pub mod decoder;
pub mod encoder;
pub mod quant;
pub mod zigzag;

pub use bitstream::{FrameType, StreamHeader};
pub use decoder::{DcFrame, Decoder, IngestHealth, PartialDecoder};
pub use encoder::{Encoder, EncoderConfig};
pub use quant::{Quantizer, QuantizerCache};

/// Errors produced while parsing a bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream does not begin with the expected magic bytes.
    BadMagic,
    /// The stream ended in the middle of a record.
    UnexpectedEof,
    /// A field held an invalid value (e.g. zero dimensions).
    InvalidField(&'static str),
    /// Entropy-coded data was malformed.
    CorruptEntropy(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "bitstream does not start with VDSM magic"),
            CodecError::UnexpectedEof => write!(f, "bitstream truncated"),
            CodecError::InvalidField(name) => write!(f, "invalid bitstream field: {name}"),
            CodecError::CorruptEntropy(what) => write!(f, "corrupt entropy data: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Convenience alias for codec results.
pub type Result<T> = std::result::Result<T, CodecError>;
