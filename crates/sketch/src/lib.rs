//! # vdsms-sketch — approximate min-wise hashing for video sequences
//!
//! Section IV of the paper. A video (sub)sequence is viewed as the *set* of
//! its frames' cell ids; sequence similarity is Jaccard set similarity
//! (Definition 2), which is what makes detection robust to temporal
//! re-ordering. Jaccard similarity is estimated with *K-min-hash* sketches:
//! `K` independent hash functions from an approximately min-wise family,
//! with the sketch holding each function's minimum over the set, and
//! `sim(Q, P) ≈ (# equal sketch positions) / K` (Eq. 3).
//!
//! The crucial streaming property is the paper's Property 1: the sketch of
//! a concatenation of two subsequences is the element-wise minimum of their
//! sketches — so candidate sequences of any length can be sketched by
//! combining basic-window sketches, never re-reading frames.

#![forbid(unsafe_code)]

pub mod cache;
pub mod exact;
pub mod hash;
pub mod sketch;

pub use cache::HashColumnCache;
pub use exact::jaccard;
pub use hash::MinHashFamily;
pub use sketch::Sketch;
