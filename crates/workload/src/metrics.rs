//! Precision / recall scoring with the paper's position-tolerance rule.
//!
//! "We record the begin `Q_i.begin` and end `Q_i.end` positions of query
//! `Q_i` on the stream. The position where a sequence matches is denoted
//! as `Q_i.p`. If `Q_i.begin + w ≤ Q_i.p ≤ Q_i.end + w` holds, this result
//! is correct." *Precision* is the fraction of reported detections that
//! are correct; *recall* is the fraction of planted copies that received
//! at least one correct detection.

use crate::truth::GtInterval;
use vdsms_core::Detection;

/// Precision/recall scores plus the underlying counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of detections that are correct (1.0 when there are no
    /// detections at all — no false claims were made).
    pub precision: f64,
    /// Fraction of planted copies detected.
    pub recall: f64,
    /// Total detections reported.
    pub detections: usize,
    /// Detections that satisfied the position rule.
    pub correct: usize,
    /// Planted copies in the ground truth.
    pub planted: usize,
    /// Planted copies with at least one correct detection.
    pub found: usize,
}

impl PrecisionRecall {
    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            return 0.0;
        }
        2.0 * self.precision * self.recall / (self.precision + self.recall)
    }
}

/// Score a detection list against the ground truth. `w_frames` is the
/// basic window size in stream frames (the rule's tolerance).
pub fn score(detections: &[Detection], truth: &[GtInterval], w_frames: u64) -> PrecisionRecall {
    let mut found = vec![false; truth.len()];
    let mut correct = 0usize;
    for d in detections {
        let mut ok = false;
        for (gi, gt) in truth.iter().enumerate() {
            if gt.query_id == d.query_id && gt.accepts(d.position(), w_frames) {
                ok = true;
                found[gi] = true;
            }
        }
        if ok {
            correct += 1;
        }
    }
    let found_count = found.iter().filter(|&&f| f).count();
    PrecisionRecall {
        precision: if detections.is_empty() { 1.0 } else { correct as f64 / detections.len() as f64 },
        recall: if truth.is_empty() { 1.0 } else { found_count as f64 / truth.len() as f64 },
        detections: detections.len(),
        correct,
        planted: truth.len(),
        found: found_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(query_id: u32, end: u64) -> Detection {
        Detection { query_id, start_frame: end.saturating_sub(40), end_frame: end, windows: 4, similarity: 0.9 }
    }

    fn gt(query_id: u32, start: u64, end: u64) -> GtInterval {
        GtInterval { query_id, start_frame: start, end_frame: end }
    }

    #[test]
    fn perfect_detection_scores_one() {
        let truth = vec![gt(1, 100, 200), gt(2, 400, 500)];
        let dets = vec![det(1, 150), det(2, 450)];
        let pr = score(&dets, &truth, 10);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.f1(), 1.0);
    }

    #[test]
    fn wrong_position_is_a_false_positive() {
        let truth = vec![gt(1, 100, 200)];
        let dets = vec![det(1, 500)];
        let pr = score(&dets, &truth, 10);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 0.0);
    }

    #[test]
    fn wrong_query_is_a_false_positive() {
        let truth = vec![gt(1, 100, 200)];
        let dets = vec![det(2, 150)];
        let pr = score(&dets, &truth, 10);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 0.0);
    }

    #[test]
    fn multiple_correct_detections_of_one_copy() {
        // Several candidates firing on the same copy: all correct, copy
        // counted found once.
        let truth = vec![gt(1, 100, 200), gt(2, 400, 500)];
        let dets = vec![det(1, 140), det(1, 160), det(1, 180)];
        let pr = score(&dets, &truth, 10);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.5);
        assert_eq!(pr.found, 1);
    }

    #[test]
    fn tolerance_boundaries_match_paper_rule() {
        let truth = vec![gt(1, 100, 200)];
        let w = 10;
        // begin + w = 110 is the first accepted position.
        assert_eq!(score(&[det(1, 109)], &truth, w).correct, 0);
        assert_eq!(score(&[det(1, 110)], &truth, w).correct, 1);
        // end + w = 199 + 10 = 209 is the last accepted position.
        assert_eq!(score(&[det(1, 209)], &truth, w).correct, 1);
        assert_eq!(score(&[det(1, 210)], &truth, w).correct, 0);
    }

    #[test]
    fn empty_cases() {
        let pr = score(&[], &[gt(1, 0, 10)], 5);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.0);
        let pr2 = score(&[det(1, 5)], &[], 5);
        assert_eq!(pr2.recall, 1.0);
        assert_eq!(pr2.precision, 0.0);
        assert_eq!(pr2.f1(), 0.0);
    }

    #[test]
    fn zero_detections_never_fabricate_precision_or_recall() {
        // No detections at all: precision is 1.0 by convention (no false
        // claims were made) but recall stays strictly 0 — a detector that
        // reports nothing must not look good on a stream full of copies.
        let truth = vec![gt(1, 100, 200), gt(2, 400, 500), gt(3, 800, 900)];
        let pr = score(&[], &truth, 10);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.0);
        assert_eq!(pr.found, 0);
        assert_eq!(pr.planted, 3);
        assert_eq!(pr.f1(), 0.0, "f1 must not reward an empty report");
    }

    #[test]
    fn fully_overlapping_spans_credit_each_truth_entry_independently() {
        // Two truth spans over the same stream frames, different queries:
        // a detection only credits the span whose query it names.
        let truth = vec![gt(1, 100, 200), gt(2, 100, 200)];
        let pr = score(&[det(1, 150)], &truth, 10);
        assert_eq!(pr.correct, 1);
        assert_eq!(pr.found, 1);
        assert_eq!(pr.recall, 0.5);

        // Same query planted in nested spans: one accepted position can
        // legitimately satisfy both records, and both count as found.
        let nested = vec![gt(1, 100, 200), gt(1, 120, 180)];
        let pr2 = score(&[det(1, 160)], &nested, 10);
        assert_eq!(pr2.correct, 1, "one detection stays one detection");
        assert_eq!(pr2.found, 2, "it satisfies both overlapping records");
        assert_eq!(pr2.recall, 1.0);
    }

    #[test]
    fn adjacent_spans_split_exactly_at_the_window_boundary() {
        // Back-to-back insertions of the same query: [100, 200) then
        // [200, 300). With w = 10, the first accepts p ∈ [110, 209] and
        // the second p ∈ [210, 309] — no position is ambiguous and no
        // position falls in a gap.
        let truth = vec![gt(1, 100, 200), gt(1, 200, 300)];
        let w = 10;
        let last_of_first = score(&[det(1, 209)], &truth, w);
        assert_eq!(last_of_first.found, 1);
        assert!(truth[0].accepts(209, w) && !truth[1].accepts(209, w));
        let first_of_second = score(&[det(1, 210)], &truth, w);
        assert_eq!(first_of_second.found, 1);
        assert!(!truth[0].accepts(210, w) && truth[1].accepts(210, w));
        // One detection per span finds both.
        let both = score(&[det(1, 150), det(1, 250)], &truth, w);
        assert_eq!(both.recall, 1.0);
        assert_eq!(both.precision, 1.0);
    }

    #[test]
    fn repeated_insertions_of_same_query() {
        let truth = vec![gt(1, 100, 200), gt(1, 1000, 1100)];
        let dets = vec![det(1, 150)];
        let pr = score(&dets, &truth, 10);
        assert_eq!(pr.recall, 0.5);
        assert_eq!(pr.precision, 1.0);
    }
}
