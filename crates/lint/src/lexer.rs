//! A small hand-rolled Rust lexer — string-, comment- and attribute-aware,
//! with no external parser dependencies (the workspace's offline stand-in
//! policy applies to tooling too).
//!
//! The lexer produces a flat token stream with source positions plus a
//! side list of comments (rules need comments for suppression directives
//! and `// SAFETY:` audits). It does **not** build a syntax tree: the
//! rules in [`crate::rules`] are token-pattern matchers, which is exactly
//! enough for the properties the gate enforces and keeps the analysis
//! trivially robust to unparsable-but-lexable code.
//!
//! Handled lexical forms: line & (nested) block comments, doc comments,
//! string literals (plain / raw `r#"…"#` / byte / raw-byte), char
//! literals vs. lifetimes, raw identifiers (`r#type`), numeric literals,
//! and multi-char punctuation relevant to the rules (`::`).

/// Kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `let`, …). Raw
    /// identifiers are stored without the `r#` prefix.
    Ident(String),
    /// Any literal: string, char, byte string or number. Only numeric
    /// literals carry their source text (the loop-progress rule needs to
    /// tell `+= 0` from `+= 1`); strings and chars are opaque and carry
    /// an empty payload.
    Literal(String),
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
    /// One punctuation character (`.`, `(`, `{`, `!`, …). `::` is lexed
    /// as [`TokenKind::PathSep`].
    Punct(char),
    /// The `::` path separator.
    PathSep,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True if the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// The literal's source text, if this token is a literal that keeps
    /// one (numbers do; strings and chars are opaque).
    pub fn literal_text(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Literal(s) if !s.is_empty() => Some(s.as_str()),
            _ => None,
        }
    }
}

/// One comment (line or block) with its position. Line comments cover
/// `//`, `///` and `//!`; block comments cover `/* … */` (nested) and
/// their doc forms.
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    /// Comment text without the delimiters.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based line where the comment ends (same as `line` for line
    /// comments).
    pub end_line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
    /// For each token index, whether the token lies inside test-only code
    /// (an item annotated `#[cfg(test)]` or `#[test]`).
    pub in_test: Vec<bool>,
}

impl LexedFile {
    /// Tokens paired with their test-code flag.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens.iter().enumerate()
    }

    /// Whether token `i` is inside test-only code.
    pub fn is_test(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }
}

/// Lex `source` into tokens and comments, then mark test-only regions.
pub fn lex(source: &str) -> LexedFile {
    let mut lx = Lexer::new(source);
    lx.run();
    let in_test = mark_test_regions(&lx.tokens);
    LexedFile { tokens: lx.tokens, comments: lx.comments, in_test }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Lexer<'a> {
        Lexer { src: source.as_bytes(), pos: 0, line: 1, col: 1, tokens: Vec::new(), comments: Vec::new() }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    /// Advance one byte, maintaining line/column. Multi-byte UTF-8
    /// continuation bytes do not advance the column (close enough for
    /// diagnostics; all rule-relevant tokens are ASCII).
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if (b & 0xC0) != 0x80 {
            self.col += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokenKind, line: u32, col: u32) {
        self.tokens.push(Token { kind, line, col });
    }

    fn run(&mut self) {
        while let Some(b) = self.peek() {
            let (line, col) = (self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(line),
                b'"' => {
                    self.string_literal();
                    self.push(TokenKind::Literal(String::new()), line, col);
                }
                b'r' | b'b' => {
                    if self.raw_or_byte_literal() {
                        self.push(TokenKind::Literal(String::new()), line, col);
                    } else {
                        self.ident();
                        // `ident()` pushed the token already.
                    }
                }
                b'\'' => self.char_or_lifetime(line, col),
                b'0'..=b'9' => {
                    let start = self.pos;
                    self.number();
                    let text =
                        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.push(TokenKind::Literal(text), line, col);
                }
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(),
                b':' if self.peek_at(1) == Some(b':') => {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::PathSep, line, col);
                }
                _ => {
                    self.bump();
                    if b.is_ascii() {
                        self.push(TokenKind::Punct(b as char), line, col);
                    }
                    // Non-ASCII bytes outside strings/comments/idents can
                    // only appear in exotic identifiers; ignore them.
                }
            }
        }
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // the two slashes
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.comments.push(Comment { text, line, end_line: line });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // `/*`
        let start = self.pos;
        let mut depth = 1u32;
        let mut end = self.pos;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    end = self.pos;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => {
                    end = self.pos;
                    break; // unterminated; tolerate
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.comments.push(Comment { text, line, end_line: self.line });
    }

    /// Plain string literal starting at `"` (escapes honoured).
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
    }

    /// Raw / byte / raw-byte string or byte-char literal starting at the
    /// current `r` or `b`. Returns false (consuming nothing) when the
    /// lookahead is an ordinary identifier (including raw identifiers,
    /// which are handled by `ident`).
    fn raw_or_byte_literal(&mut self) -> bool {
        let b0 = self.peek();
        let rest = &self.src[self.pos..];
        let after_prefix = |s: &[u8], skip: usize| -> Option<(usize, u8)> {
            s.get(skip).map(|&c| (skip, c))
        };
        match b0 {
            Some(b'r') => {
                // r"…" or r#…#"…"#…# — but r#ident is a raw identifier.
                let mut hashes = 0usize;
                while rest.get(1 + hashes) == Some(&b'#') {
                    hashes += 1;
                }
                if rest.get(1 + hashes) == Some(&b'"') {
                    self.raw_string(1, hashes);
                    true
                } else {
                    false
                }
            }
            Some(b'b') => match after_prefix(rest, 1) {
                Some((_, b'"')) => {
                    self.bump(); // b
                    self.string_literal();
                    true
                }
                Some((_, b'\'')) => {
                    self.bump(); // b
                    self.bump(); // '
                    while let Some(c) = self.bump() {
                        match c {
                            b'\\' => {
                                self.bump();
                            }
                            b'\'' => break,
                            _ => {}
                        }
                    }
                    true
                }
                Some((_, b'r')) => {
                    let mut hashes = 0usize;
                    while rest.get(2 + hashes) == Some(&b'#') {
                        hashes += 1;
                    }
                    if rest.get(2 + hashes) == Some(&b'"') {
                        self.raw_string(2, hashes);
                        true
                    } else {
                        false
                    }
                }
                _ => false,
            },
            _ => false,
        }
    }

    /// Consume a raw string: `prefix_len` bytes of prefix (`r` or `br`),
    /// `hashes` hash marks, the quote, the body, the closing quote and
    /// hashes.
    fn raw_string(&mut self, prefix_len: usize, hashes: usize) {
        for _ in 0..prefix_len + hashes + 1 {
            self.bump();
        }
        loop {
            match self.bump() {
                None => break,
                Some(b'"') => {
                    let mut n = 0usize;
                    while n < hashes && self.peek() == Some(b'#') {
                        self.bump();
                        n += 1;
                    }
                    if n == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// Char literal or lifetime, starting at `'`.
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        // Lifetime: 'ident not followed by a closing quote.
        let rest = &self.src[self.pos..];
        let is_ident_start =
            |b: u8| b == b'_' || b.is_ascii_alphabetic();
        if rest.get(1).copied().is_some_and(is_ident_start) {
            // Find the end of the identifier run; a lifetime has no
            // trailing quote ('a, 'static), a char literal does ('a').
            let mut j = 2;
            while rest.get(j).copied().is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric()) {
                j += 1;
            }
            if rest.get(j) != Some(&b'\'') {
                for _ in 0..j {
                    self.bump();
                }
                self.push(TokenKind::Lifetime, line, col);
                return;
            }
        }
        // Char literal.
        self.bump(); // opening quote
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal(String::new()), line, col);
    }

    fn number(&mut self) {
        while let Some(b) = self.peek() {
            // Numeric literals (including 0x…, 1_000u64, 1.5e-3): consume
            // the alphanumeric run plus underscores and dots; `1.0e-3`
            // needs the sign after an exponent marker.
            match b {
                // A dot continues the literal only before a digit, so that
                // `0..10` (range) and `x.0.unwrap()` (tuple field then
                // method call) keep their dots as punctuation.
                b'.' => {
                    if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let at_exp_sign = (b == b'e' || b == b'E')
                        && matches!(self.peek_at(1), Some(b'+') | Some(b'-'));
                    self.bump();
                    if at_exp_sign {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn ident(&mut self) {
        let (line, col) = (self.line, self.col);
        // Raw identifier prefix.
        if self.peek() == Some(b'r') && self.peek_at(1) == Some(b'#') {
            self.bump();
            self.bump();
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Ident(text), line, col);
    }
}

/// Mark which tokens belong to test-only code: any item annotated with
/// `#[cfg(test)]` or `#[test]` (attributes may stack). The marker scans
/// for the attribute, skips any further attributes, then covers the item
/// up to the end of its brace block (or to the terminating `;` for
/// block-less items).
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = test_attribute_end(tokens, i) {
            // Cover from the attribute itself to the end of the item.
            let item_end = item_end(tokens, after_attr);
            for f in flags.iter_mut().take(item_end).skip(i) {
                *f = true;
            }
            i = item_end;
        } else {
            i += 1;
        }
    }
    flags
}

/// If tokens starting at `i` form `#[cfg(test)]` or `#[test]` (or
/// `#[cfg(any(test, …))]`-style forms mentioning `test`), return the index
/// one past the closing `]`.
fn test_attribute_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    // Find the matching `]` at depth 0, collecting identifiers.
    let mut depth = 0i32;
    let mut j = i + 1;
    let mut mentions_test = false;
    let mut mentions_not = false;
    let mut head: Option<&str> = None;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Punct('[') | TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(']') | TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenKind::Ident(s) => {
                if head.is_none() {
                    head = Some(s.as_str());
                }
                if s == "test" {
                    mentions_test = true;
                }
                if s == "not" {
                    mentions_not = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let recognized = match head {
        Some("test") => true,
        // `#[cfg(test)]` / `#[cfg(any(test, …))]` — but not
        // `#[cfg(not(test))]`, which guards *production* code.
        Some("cfg") => mentions_test && !mentions_not,
        _ => false,
    };
    (recognized && j < tokens.len()).then_some(j + 1)
}

/// End index (exclusive) of the item starting at `i`: skips further
/// attributes, then runs to the matching `}` of the first brace block, or
/// to the first `;` at depth 0 for block-less items.
fn item_end(tokens: &[Token], mut i: usize) -> usize {
    // Skip stacked attributes.
    while i + 1 < tokens.len() && tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < tokens.len() {
            match tokens[j].kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
    }
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            TokenKind::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // unwrap() in a comment
            /* HashMap in /* nested */ block */
            let s = "panic!(\"no\")";
            let r = r#"unwrap()"#;
            let b = b"expect";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Literal(_)))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 1);
    }

    #[test]
    fn numeric_literals_keep_their_text() {
        let lexed = lex("let a = 0; let b = 1_000u64; let s = \"7\";");
        let texts: Vec<&str> = lexed.tokens.iter().filter_map(Token::literal_text).collect();
        // The string literal is opaque (no payload); numbers keep theirs.
        assert_eq!(texts, ["0", "1_000u64"]);
    }

    #[test]
    fn path_sep_is_one_token() {
        let lexed = lex("std::time::Instant::now()");
        let seps = lexed.tokens.iter().filter(|t| t.kind == TokenKind::PathSep).count();
        assert_eq!(seps, 3);
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  b");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { y.unwrap(); }
            }
            fn live2() {}
        ";
        let lexed = lex(src);
        let flag_of = |name: &str| {
            match lexed.tokens.iter().position(|t| t.is_ident(name)) {
                Some(i) => lexed.is_test(i),
                None => panic!("token `{name}` not found"),
            }
        };
        assert!(!flag_of("live"));
        assert!(flag_of("tests"));
        assert!(flag_of("y"));
        assert!(!flag_of("live2"));
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let src = "
            #[test]
            fn check() { z.unwrap(); }
            fn live() {}
        ";
        let lexed = lex(src);
        let pos_of = |name: &str| {
            match lexed.tokens.iter().position(|t| t.is_ident(name)) {
                Some(i) => i,
                None => panic!("token `{name}` not found"),
            }
        };
        assert!(lexed.is_test(pos_of("z")));
        assert!(!lexed.is_test(pos_of("live")));
    }

    #[test]
    fn raw_identifier_is_ident_not_string() {
        let ids = idents("let r#type = 1; let rx = r;");
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"rx".to_string()));
    }
}
