//! Byte-soup fuzzing: the linter must survive arbitrary input without
//! panicking. Three surfaces are hammered — raw bytes masquerading as
//! source, Rust-shaped token soup (the nastier case: it gets deep into
//! the parser), and corrupted cache JSON — and every case must come
//! back with *some* report, never an abort. The full pipeline runs:
//! lex → parse → summarize → link-phase analysis → render/JSON/SARIF.

use proptest::prelude::*;
use vdsms_lint::config::KNOWN_KEYS;
use vdsms_lint::summaries::FileSummary;
use vdsms_lint::{lint_sources, parse_config, sarif, LintConfig, SourceFile};

/// A config with every rule switched on, so fuzz inputs exercise all
/// nine analyses, not just the default set.
fn all_rules() -> LintConfig {
    let mut toml = String::from("[default]\n");
    for key in KNOWN_KEYS {
        if *key == "unsafe-allowed" {
            continue;
        }
        toml.push_str(&format!("{key} = true\n"));
    }
    parse_config(&toml).unwrap()
}

/// Run the whole pipeline over one synthetic file and serialize every
/// output format; the only failure mode we accept is a diagnostic.
fn lint_soup(source: String, is_crate_root: bool) {
    let files = [SourceFile {
        crate_name: "fuzz".to_string(),
        path: "fuzz.rs".to_string(),
        source,
        is_crate_root,
    }];
    let report = lint_sources(&files, &all_rules());
    let _ = report.render();
    let _ = report.to_json();
    let _ = sarif::to_sarif(&report);
}

/// Fragments that look enough like Rust to drive the parser into its
/// corners: unbalanced delimiters, half-finished items, markers the
/// summarizer keys on, raw strings, lifetimes, macro soup.
const FRAGMENTS: &[&str] = &[
    "fn ",
    "pub fn f(",
    ") -> Result<(), ",
    "{",
    "}",
    "((",
    "]]",
    "let _ = ",
    "let mut x = ",
    ".ok();",
    "?;",
    "unwrap()",
    "while ",
    "loop {",
    "for i in ",
    "0..n",
    "match x {",
    "=> {}",
    "impl ",
    "struct S",
    "self.",
    "read_u8()",
    "payload_len",
    "Vec::with_capacity(",
    "table[i]",
    ".lock()",
    ".send(v)",
    // Concurrency-summary bait: spawn/closure/channel shapes that feed
    // the spawn-capture, channel-bind and blocking walks.
    "thread::spawn(move || {",
    "thread::spawn(move || { tx.send(x); })",
    "let (tx, rx) = mpsc::channel();",
    "let (tx, rx) = mpsc::sync_channel(1);",
    "let (a, mut b",
    "Arc::new(RefCell::new(0))",
    "Arc::clone(&state)",
    "Rc::new(",
    "static mut ",
    ".recv()",
    ".recv_timeout(t)",
    ".join()",
    "drop(rx);",
    "drop(g);",
    "move ||",
    "// vdsms-lint: entry",
    "// vdsms-lint: allow(no-panic) reason=\"x\"",
    "#[test]",
    "#[cfg(test)]",
    "r#\"raw",
    "\"unterminated",
    "'a>",
    "'x'",
    "b'\\\\",
    "macro_rules! m {",
    "1_000_000usize",
    "0xFFu8 as usize",
    "/* nested /* comment",
    "\u{0}\u{7f}",
    "λ≤≥→",
    ";;",
    ",",
    "::<>",
];

fn assemble(picks: &[usize], seps: &[bool]) -> String {
    let mut out = String::new();
    for (k, &p) in picks.iter().enumerate() {
        out.push_str(FRAGMENTS[p % FRAGMENTS.len()]);
        out.push(if seps.get(k).copied().unwrap_or(false) { '\n' } else { ' ' });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Raw bytes through UTF-8 lossy conversion: mostly lexer abuse —
    /// control characters, replacement chars, stray delimiters.
    #[test]
    fn raw_byte_soup_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
        is_root in any::<bool>(),
    ) {
        lint_soup(String::from_utf8_lossy(&bytes).into_owned(), is_root);
    }

    /// Rust-shaped token soup: random fragment sequences reach far past
    /// the lexer into item/expression parsing and summarization.
    #[test]
    fn token_soup_never_panics(
        picks in proptest::collection::vec(any::<usize>(), 0..256),
        seps in proptest::collection::vec(any::<bool>(), 0..256),
        is_root in any::<bool>(),
    ) {
        lint_soup(assemble(&picks, &seps), is_root);
    }

    /// A corrupted cache entry must read as a miss (`None`), never a
    /// panic: the cache self-heals by re-parsing.
    #[test]
    fn corrupt_cache_json_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let _ = FileSummary::from_json(&String::from_utf8_lossy(&bytes));
    }

    /// Mutated *valid* summaries: round-trip a real summary, splice in
    /// garbage at a random offset, and require a clean Some/None.
    #[test]
    fn spliced_summary_json_never_panics(
        cut in any::<usize>(),
        splice in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let file = SourceFile {
            crate_name: "fuzz".to_string(),
            path: "fuzz.rs".to_string(),
            source: "pub fn f() { let _ = g(); }\nfn g() -> Result<(), ()> { Ok(()) }\n"
                .to_string(),
            is_crate_root: false,
        };
        let mut json = vdsms_lint::summarize_file(&file).to_json();
        let mut at = cut % (json.len() + 1);
        while !json.is_char_boundary(at) {
            at -= 1;
        }
        json.insert_str(at, &String::from_utf8_lossy(&splice));
        let _ = FileSummary::from_json(&json);
    }
}
