//! Property tests for the grid–pyramid partition and Eq. 1 normalization.

use proptest::prelude::*;
use vdsms_features::{normalize, GridPyramid};

fn arb_feature(d: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(0.0f32..=1.0, d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every feature vector maps to a valid cell, and the id decomposes
    /// into (grid order, pyramid order).
    #[test]
    fn cell_id_in_range_and_decomposes(
        d in 1usize..8,
        u in 1u32..8,
        raw in proptest::collection::vec(0.0f32..=1.0, 8),
    ) {
        let p = GridPyramid::new(d, u);
        let f = &raw[..d];
        let id = p.cell_id(f);
        prop_assert!(id < p.num_cells());
        prop_assert_eq!(id / (2 * d as u64), p.grid_order(f));
        prop_assert_eq!(id % (2 * d as u64), p.pyramid_order(f));
        prop_assert!(p.pyramid_order(f) < 2 * d as u64);
    }

    /// Two points in the same grid cell share a grid order; pyramid order
    /// depends only on offsets from the cell centre.
    #[test]
    fn same_cell_points_share_grid_order(
        u in 2u32..6,
        f in arb_feature(5),
    ) {
        let p = GridPyramid::new(5, u);
        // Snap each coordinate to its cell centre: same grid cell.
        let centred: Vec<f32> = f
            .iter()
            .map(|&v| {
                let g = ((v * u as f32) as u32).min(u - 1);
                (g as f32 + 0.5) / u as f32
            })
            .collect();
        prop_assert_eq!(p.grid_order(&f), p.grid_order(&centred));
    }

    /// Normalization is idempotent and invariant to positive affine maps.
    #[test]
    fn normalize_affine_invariant(
        vals in proptest::collection::vec(-1000.0f32..1000.0, 2..10),
        gain in 0.1f32..10.0,
        offset in -500.0f32..500.0,
    ) {
        let n1 = normalize(&vals);
        let mapped: Vec<f32> = vals.iter().map(|&v| v * gain + offset).collect();
        let n2 = normalize(&mapped);
        for (a, b) in n1.iter().zip(&n2) {
            prop_assert!((a - b).abs() < 1e-3, "affine map changed normalization");
        }
        // Idempotent.
        let n3 = normalize(&n1);
        for (a, b) in n1.iter().zip(&n3) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Normalized outputs are always in [0, 1] with the extremes attained.
    #[test]
    fn normalize_range(vals in proptest::collection::vec(-1e6f32..1e6, 2..12)) {
        let n = normalize(&vals);
        prop_assert!(n.iter().all(|&v| (0.0..=1.0).contains(&v)));
        if vals.iter().any(|&v| v != vals[0]) {
            prop_assert!(n.contains(&0.0));
            prop_assert!(n.contains(&1.0));
        }
    }

    /// Small perturbations that keep every coordinate inside its grid
    /// slice and keep the arg-max dimension dominant do not change the
    /// cell id (the robustness property of Section III-A).
    #[test]
    fn stable_under_in_cell_jitter(
        u in 2u32..6,
        f in arb_feature(5),
        eps in proptest::collection::vec(-0.001f32..0.001, 5),
    ) {
        let p = GridPyramid::new(5, u);
        let jittered: Vec<f32> = f
            .iter()
            .zip(&eps)
            .map(|(&v, &e)| (v + e).clamp(0.0, 1.0))
            .collect();
        // Only assert when no coordinate crossed a slice boundary and the
        // pyramid arg-max did not flip (which the jitter can legitimately
        // cause at ties).
        if p.grid_order(&f) == p.grid_order(&jittered)
            && p.pyramid_order(&f) == p.pyramid_order(&jittered)
        {
            prop_assert_eq!(p.cell_id(&f), p.cell_id(&jittered));
        }
    }
}
