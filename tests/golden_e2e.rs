//! Deterministic end-to-end golden test: a fixed synthetic broadcast with
//! two planted query clips, run through the full pipeline (encode →
//! partial decode → features → sketch → detect), must reproduce the
//! committed detection list exactly — ids, frame ranges, window counts,
//! and similarities (to 1e-9).
//!
//! Every stage is seeded and the pipeline is pure integer/deterministic
//! float arithmetic, so any divergence is a real behavior change: codec
//! bit layout, feature normalization, sketch hashing, window bookkeeping,
//! or detection logic. Update the list only when such a change is
//! intended, by running with `GOLDEN_PRINT=1`.

use vdsms::codec::{Encoder, EncoderConfig};
use vdsms::video::source::{ClipGenerator, SourceSpec};
use vdsms::video::Fps;
use vdsms::{DetectorConfig, MonitorBuilder};

/// (query_id, start_frame, end_frame, windows, similarity).
const GOLDEN: &[(u32, u64, u64, usize, f64)] = &[
    (7, 100, 175, 4, 0.875),
    (7, 120, 175, 3, 0.74125),
    (13, 300, 375, 4, 0.76375),
    (13, 320, 395, 4, 0.8925),
];

fn spec(seed: u64) -> SourceSpec {
    SourceSpec {
        width: 96,
        height: 64,
        fps: Fps::integer(10),
        seed,
        min_scene_s: 1.0,
        max_scene_s: 3.0,
        motifs: None,
    }
}

#[test]
fn full_pipeline_reproduces_golden_detections() {
    let enc = EncoderConfig { gop: 5, quality: 80, motion_search: true };
    let query_a = ClipGenerator::new(spec(71)).clip(10.0);
    let query_b = ClipGenerator::new(spec(72)).clip(10.0);

    let mut monitor = MonitorBuilder::new()
        .detector(DetectorConfig { window_keyframes: 4, ..Default::default() })
        .query_encoder(enc)
        .build();
    monitor.subscribe_clip(7, &query_a);
    monitor.subscribe_clip(13, &query_b);

    // Broadcast: 10s background, query A, 10s background, query B, 5s tail.
    let mut broadcast = ClipGenerator::new(spec(90)).clip(10.0);
    broadcast.append(query_a);
    broadcast.append(ClipGenerator::new(spec(91)).clip(10.0));
    broadcast.append(query_b);
    broadcast.append(ClipGenerator::new(spec(92)).clip(5.0));
    let bitstream = Encoder::encode_clip(&broadcast, enc);

    let detections = monitor.watch_bitstream(&bitstream).unwrap();
    let got: Vec<(u32, u64, u64, usize, f64)> = detections
        .iter()
        .map(|d| (d.query_id, d.start_frame, d.end_frame, d.windows, d.similarity))
        .collect();

    if std::env::var_os("GOLDEN_PRINT").is_some() {
        for g in &got {
            println!("    ({}, {}, {}, {}, {:?}),", g.0, g.1, g.2, g.3, g.4);
        }
    }

    assert_eq!(got.len(), GOLDEN.len(), "detection list changed: {got:?}");
    for (g, want) in got.iter().zip(GOLDEN) {
        assert_eq!((g.0, g.1, g.2, g.3), (want.0, want.1, want.2, want.3), "{got:?}");
        assert!((g.4 - want.4).abs() < 1e-9, "similarity drift: {} vs {}", g.4, want.4);
    }
}
