//! The streaming detector: key frames in, detections out.
//!
//! This is the algorithm summarized at the end of Section V-C:
//!
//! 1. offline, query sketches `QS` and the HQ index are built;
//! 2. every `w` incoming key frames are sketched into a basic window,
//!    whose related-query list `R_L` comes from `ProbeIndex` (or from a
//!    full scan for the NoIndex variants);
//! 3. candidate signatures/sketches are combined in Sequential or
//!    Geometric order, matches (Lemma 1, threshold δ) are reported, and
//!    Lemma-2 violators are dropped;
//! 4. the process continues until the end of the stream.

use crate::config::{DetectorConfig, Order, Representation};
use crate::detection::Detection;
use crate::geo_store::GeoStore;
use crate::hq::HqIndex;
use crate::query::{Query, QueryId, QuerySet};
use crate::seq_store::SeqStore;
use crate::stats::Stats;
use crate::window::{Window, WindowRelations};
use std::sync::Arc;
use vdsms_sketch::{HashColumnCache, MinHashFamily, Sketch};

/// Ways in the per-detector hash-column cache: covers the distinct
/// cell ids of several scenes (a 60 s stream shows ~36 distinct ids) at
/// `64 × K × 8` bytes — ~410 KiB at the paper's K = 800.
const HASH_CACHE_WAYS: usize = 64;

enum Store {
    Seq(SeqStore),
    Geo(GeoStore),
}

/// The continuous copy detector for one video stream.
pub struct Detector {
    cfg: DetectorConfig,
    family: MinHashFamily,
    /// The subscribed catalogue. Shared (`Arc`) so a fleet of detectors
    /// watching the same queries keeps one copy; per-detector
    /// subscription changes copy-on-write via [`Arc::make_mut`].
    queries: Arc<QuerySet>,
    /// The HQ index over `queries`, shared the same way.
    index: Option<Arc<HqIndex>>,
    store: Store,
    /// Cell ids of the window being filled.
    buffer: Vec<u64>,
    /// Frame index of the first key frame in the buffer.
    buffer_start: u64,
    /// Frame index of the last key frame pushed.
    last_frame: u64,
    next_window: u64,
    stats: Stats,
    /// Scratch sketch reused for every basic window (zero-alloc steady
    /// state): moved into the [`Window`] for the store's `advance`, then
    /// moved back.
    win_sketch: Sketch,
    /// Reusable per-window relation set.
    rel: WindowRelations,
    /// Direct-mapped cell-id → hash-column cache: adjacent key frames
    /// usually repeat their cell id, so most window-fold ids replay a
    /// cached column instead of re-evaluating the K hash functions.
    hash_cache: HashColumnCache,
    /// Reusable index-probe working state and hit buffer.
    probe_scratch: crate::hq::ProbeScratch,
    probe_hits: Vec<crate::hq::ProbeHit>,
}

impl Detector {
    /// Create a detector for a query set.
    ///
    /// The queries' sketches must have been built with the same
    /// `(k, hash_seed)` family — use [`Detector::family_for`] or
    /// [`Detector::make_query`].
    ///
    /// # Panics
    /// Panics if the configuration is invalid or a query's `K` mismatches.
    pub fn new(cfg: DetectorConfig, queries: QuerySet) -> Detector {
        cfg.validate();
        if let Some(k) = queries.k() {
            assert_eq!(k, cfg.k, "query sketches must use K = {}", cfg.k);
        }
        let index = cfg.use_index.then(|| Arc::new(HqIndex::build(cfg.k, &queries)));
        Detector::with_shared(cfg, Arc::new(queries), index)
    }

    /// Create a detector that shares a pre-built catalogue and index with
    /// other detectors (fleet use). The index must have been built over
    /// exactly `queries`, and must be `Some` iff `cfg.use_index`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid, a query's `K` mismatches,
    /// or index presence disagrees with `cfg.use_index`.
    pub fn with_shared(
        cfg: DetectorConfig,
        queries: Arc<QuerySet>,
        index: Option<Arc<HqIndex>>,
    ) -> Detector {
        cfg.validate();
        if let Some(k) = queries.k() {
            assert_eq!(k, cfg.k, "query sketches must use K = {}", cfg.k);
        }
        assert_eq!(
            cfg.use_index,
            index.is_some(),
            "shared index must be provided exactly when cfg.use_index"
        );
        if let Some(ix) = &index {
            assert_eq!(ix.k(), cfg.k, "shared index K mismatch");
            assert_eq!(ix.len(), queries.len(), "shared index does not cover the catalogue");
        }
        let store = match cfg.order {
            Order::Sequential => Store::Seq(SeqStore::new(cfg.representation)),
            Order::Geometric => Store::Geo(GeoStore::new(cfg.representation)),
        };
        let family = MinHashFamily::new(cfg.k, cfg.hash_seed);
        let hash_cache = HashColumnCache::new(&family, HASH_CACHE_WAYS);
        Detector {
            family,
            win_sketch: Sketch::empty(cfg.k),
            buffer: Vec::with_capacity(cfg.window_keyframes),
            cfg,
            queries,
            index,
            store,
            buffer_start: 0,
            last_frame: 0,
            next_window: 0,
            stats: Stats::default(),
            rel: WindowRelations::new(),
            hash_cache,
            probe_scratch: crate::hq::ProbeScratch::default(),
            probe_hits: Vec::new(),
        }
    }

    /// The min-hash family matching a configuration — what queries must be
    /// sketched with.
    pub fn family_for(cfg: &DetectorConfig) -> MinHashFamily {
        MinHashFamily::new(cfg.k, cfg.hash_seed)
    }

    /// Sketch a query from its key-frame cell ids with this detector's
    /// family.
    pub fn make_query(&self, id: QueryId, cell_ids: &[u64]) -> Query {
        Query::from_cell_ids(id, &self.family, cell_ids)
    }

    /// The configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// The subscribed queries.
    pub fn queries(&self) -> &QuerySet {
        &self.queries
    }

    /// Accumulated operation counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Subscribe a new query online (paper Section V-C.1).
    ///
    /// # Panics
    /// Panics on duplicate id or `K` mismatch.
    pub fn subscribe(&mut self, query: Query) {
        assert_eq!(query.sketch.k(), self.cfg.k, "query sketch K mismatch");
        if let Some(ix) = &mut self.index {
            Arc::make_mut(ix).insert(&query);
        }
        Arc::make_mut(&mut self.queries).insert(query);
    }

    /// Unsubscribe a query online. Candidates tracking it shed their
    /// entries lazily. Returns `false` if the id was not subscribed.
    pub fn unsubscribe(&mut self, id: QueryId) -> bool {
        if let Some(ix) = &mut self.index {
            Arc::make_mut(ix).remove(id);
        }
        Arc::make_mut(&mut self.queries).remove(id).is_some()
    }

    /// Atomically replace the catalogue and index with new shared
    /// snapshots (fleet subscription broadcast). The swap happens between
    /// basic windows, so it is equivalent to per-detector
    /// `subscribe`/`unsubscribe` calls producing the same catalogue —
    /// candidates tracking a removed query shed their entries lazily,
    /// exactly as with [`Detector::unsubscribe`].
    ///
    /// # Panics
    /// Panics on `K` mismatch or if index presence disagrees with
    /// `cfg.use_index`.
    pub fn install_catalogue(&mut self, queries: Arc<QuerySet>, index: Option<Arc<HqIndex>>) {
        if let Some(k) = queries.k() {
            assert_eq!(k, self.cfg.k, "query sketches must use K = {}", self.cfg.k);
        }
        assert_eq!(
            self.cfg.use_index,
            index.is_some(),
            "shared index must be provided exactly when cfg.use_index"
        );
        self.queries = queries;
        self.index = index;
    }

    /// Feed one key frame's fingerprint. Returns the detections triggered
    /// if this key frame completed a basic window (empty otherwise).
    // vdsms-lint: entry
    pub fn push_keyframe(&mut self, frame_index: u64, cell_id: u64) -> Vec<Detection> {
        if self.buffer.is_empty() {
            self.buffer_start = frame_index;
        }
        // vdsms-lint: allow(no-alloc-hot-path) reason="pre-reserved to window_keyframes in the constructor; drain() keeps the capacity"
        self.buffer.push(cell_id);
        self.last_frame = frame_index;
        if self.buffer.len() >= self.cfg.window_keyframes {
            self.process_window()
        } else {
            Vec::new()
        }
    }

    /// Flush a partially-filled final window at end of stream.
    // vdsms-lint: entry
    pub fn finish(&mut self) -> Vec<Detection> {
        if self.buffer.is_empty() {
            return Vec::new();
        }
        self.process_window()
    }

    fn process_window(&mut self) -> Vec<Detection> {
        // Reuse the scratch sketch: move it into the window for the
        // store's `advance`, move it back after. `Sketch::default()` is a
        // detached zero-K placeholder; no allocation happens on this path
        // after the constructor.
        let mut sketch = std::mem::take(&mut self.win_sketch);
        sketch.reset(self.cfg.k);
        sketch.observe_batch_cached(&self.family, &mut self.hash_cache, &self.buffer);
        self.buffer.clear();
        let win = Window {
            index: self.next_window,
            start_frame: self.buffer_start,
            end_frame: self.last_frame,
            sketch,
        };
        self.next_window += 1;
        self.stats.windows += 1;

        match (&self.index, self.cfg.representation) {
            (Some(ix), _) => {
                self.stats.index_probes += 1;
                // The previous window's cached signatures are dead; give
                // their buffers back to the probe's pool before refilling.
                self.rel.recycle_sigs_into(&mut self.probe_scratch);
                self.stats.index_row_searches += ix.probe_into(
                    &win.sketch,
                    self.cfg.pruning_delta(),
                    &mut self.probe_scratch,
                    &mut self.probe_hits,
                );
                self.rel.reset_from_probe(&mut self.probe_hits);
            }
            // NoIndex: every query is related; for the Bit representation
            // the window's signature must be encoded against every query
            // (this cost is the point of Fig. 9's comparison). Encodes
            // happen lazily but every related entry will be touched, so
            // the accounting stays exact.
            (None, Representation::Bit) | (None, Representation::Sketch) => {
                self.rel.reset_all_queries(&self.queries);
            }
        }

        let out = match &mut self.store {
            Store::Seq(s) => {
                s.advance(&win, &mut self.rel, &self.cfg, &self.queries, &mut self.stats)
            }
            Store::Geo(s) => {
                s.advance(&win, &mut self.rel, &self.cfg, &self.queries, &mut self.stats)
            }
        };
        self.win_sketch = win.sketch;
        out
    }

    /// Convenience: run a whole fingerprint sequence through the detector.
    /// `frames` yields `(frame_index, cell_id)` pairs.
    pub fn run<I: IntoIterator<Item = (u64, u64)>>(&mut self, frames: I) -> Vec<Detection> {
        let mut out = Vec::new();
        for (frame_index, cell_id) in frames {
            out.extend(self.push_keyframe(frame_index, cell_id));
        }
        out.extend(self.finish());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: usize = 128;

    fn cfg(order: Order, rep: Representation, use_index: bool) -> DetectorConfig {
        DetectorConfig {
            k: K,
            delta: 0.7,
            lambda: 2.0,
            window_keyframes: 5,
            order,
            representation: rep,
            use_index,
            ..Default::default()
        }
    }

    /// A stream of 200 key frames with a planted copy of the query at
    /// frames 100..130 (cell ids match the query's, re-ordered).
    fn planted_stream(query_ids: &[u64]) -> Vec<(u64, u64)> {
        let mut frames = Vec::new();
        for i in 0..200u64 {
            let id = if (100..100 + query_ids.len() as u64).contains(&i) {
                // Reverse order inside the copy: set similarity is order-blind.
                query_ids[(query_ids.len() as u64 - 1 - (i - 100)) as usize]
            } else {
                1_000_000 + i * 13 // background content
            };
            frames.push((i, id));
        }
        frames
    }

    fn all_variants() -> Vec<DetectorConfig> {
        let mut v = Vec::new();
        for order in [Order::Sequential, Order::Geometric] {
            for rep in [Representation::Sketch, Representation::Bit] {
                for use_index in [false, true] {
                    v.push(cfg(order, rep, use_index));
                }
            }
        }
        v
    }

    #[test]
    fn every_variant_finds_the_planted_copy() {
        let query_ids: Vec<u64> = (0..30).map(|i| i * 3 + 7).collect();
        for config in all_variants() {
            let family = Detector::family_for(&config);
            let queries = QuerySet::from_queries(vec![Query::from_cell_ids(
                1, &family, &query_ids,
            )]);
            let mut det = Detector::new(config, queries);
            let dets = det.run(planted_stream(&query_ids));
            assert!(
                dets.iter().any(|d| d.query_id == 1),
                "variant {:?}/{:?}/index={} missed the planted copy",
                config.order,
                config.representation,
                config.use_index
            );
            // Detection position must fall inside the copy region
            // (the paper's correctness rule with w tolerance).
            let d = dets.iter().find(|d| d.query_id == 1).unwrap();
            assert!(
                (100..=135).contains(&d.position()),
                "position {} outside the copy",
                d.position()
            );
        }
    }

    #[test]
    fn clean_stream_produces_no_detections() {
        let query_ids: Vec<u64> = (0..30).map(|i| i * 3 + 7).collect();
        for config in all_variants() {
            let family = Detector::family_for(&config);
            let queries =
                QuerySet::from_queries(vec![Query::from_cell_ids(1, &family, &query_ids)]);
            let mut det = Detector::new(config, queries);
            let frames: Vec<(u64, u64)> =
                (0..150u64).map(|i| (i, 2_000_000 + i * 17)).collect();
            let dets = det.run(frames);
            assert!(dets.is_empty(), "false positives on clean stream: {dets:?}");
        }
    }

    #[test]
    fn index_and_noindex_agree_on_what_matters() {
        // The index changes which candidates TRACK a query (a candidate
        // born from a window sharing no min-hash value with the query
        // never tracks it), but any candidate the index drops starts on
        // unrelated content, so the copy itself is still found. Both
        // variants must detect the query, and the indexed variant's
        // detections must be a subset of the brute-force variant's.
        let query_ids: Vec<u64> = (0..30).map(|i| i * 3 + 7).collect();
        let mk = |use_index: bool| {
            let config = cfg(Order::Sequential, Representation::Bit, use_index);
            let family = Detector::family_for(&config);
            let queries =
                QuerySet::from_queries(vec![Query::from_cell_ids(1, &family, &query_ids)]);
            let mut det = Detector::new(config, queries);
            let mut dets = det.run(planted_stream(&query_ids));
            dets.sort_by_key(|d| (d.start_frame, d.end_frame));
            dets.iter().map(|d| (d.query_id, d.start_frame, d.end_frame)).collect::<Vec<_>>()
        };
        let indexed = mk(true);
        let brute = mk(false);
        assert!(!indexed.is_empty());
        assert!(indexed.iter().all(|d| brute.contains(d)), "{indexed:?} ⊄ {brute:?}");
    }

    #[test]
    fn index_probes_far_fewer_queries_than_bruteforce() {
        // 50 queries, none related to the stream: the indexed variant's
        // comparison counters must be far below the brute-force one's.
        let make = |use_index: bool| {
            let config = cfg(Order::Sequential, Representation::Bit, use_index);
            let family = Detector::family_for(&config);
            let queries = QuerySet::from_queries(
                (0..50u32)
                    .map(|q| {
                        let ids: Vec<u64> = (0..20).map(|i| u64::from(q) * 500 + i).collect();
                        Query::from_cell_ids(q, &family, &ids)
                    })
                    .collect(),
            );
            let mut det = Detector::new(config, queries);
            let frames: Vec<(u64, u64)> = (0..300u64).map(|i| (i, 9_000_000 + i)).collect();
            det.run(frames);
            det.stats().sig_encodes + det.stats().sig_ors + det.stats().sig_compares
        };
        let with_index = make(true);
        let without = make(false);
        assert!(
            with_index * 5 < without,
            "index saved too little: {with_index} vs {without}"
        );
    }

    #[test]
    fn online_subscribe_and_unsubscribe_take_effect() {
        let config = cfg(Order::Sequential, Representation::Bit, true);
        let family = Detector::family_for(&config);
        let query_ids: Vec<u64> = (0..20).map(|i| i * 5 + 3).collect();
        let mut det = Detector::new(config, QuerySet::new());

        // Not subscribed yet: the copy at 20..40 goes unnoticed.
        let mut found = Vec::new();
        for i in 0..50u64 {
            let id = if (20..40).contains(&i) { query_ids[(i - 20) as usize] } else { 7_000_000 + i };
            found.extend(det.push_keyframe(i, id));
        }
        assert!(found.is_empty());

        // Subscribe; a second occurrence is detected.
        det.subscribe(Query::from_cell_ids(9, &family, &query_ids));
        for i in 50..100u64 {
            let id = if (60..80).contains(&i) { query_ids[(i - 60) as usize] } else { 7_000_000 + i };
            found.extend(det.push_keyframe(i, id));
        }
        assert!(found.iter().any(|d| d.query_id == 9), "subscribed query must be found");

        // Unsubscribe; a third occurrence is ignored.
        assert!(det.unsubscribe(9));
        found.clear();
        for i in 100..150u64 {
            let id =
                if (110..130).contains(&i) { query_ids[(i - 110) as usize] } else { 7_000_000 + i };
            found.extend(det.push_keyframe(i, id));
        }
        assert!(found.is_empty(), "unsubscribed query must be ignored: {found:?}");
    }

    #[test]
    fn finish_flushes_partial_window() {
        let config = cfg(Order::Sequential, Representation::Bit, true);
        let family = Detector::family_for(&config);
        let query_ids: Vec<u64> = (0..8).collect();
        let queries = QuerySet::from_queries(vec![Query::from_cell_ids(1, &family, &query_ids)]);
        let mut det = Detector::new(config, queries);
        // 8 matching frames: one full window (5) + 3 buffered.
        let mut dets = Vec::new();
        for i in 0..8u64 {
            dets.extend(det.push_keyframe(i, query_ids[i as usize]));
        }
        dets.extend(det.finish());
        assert!(
            dets.iter().any(|d| d.similarity >= 0.99),
            "flush must let the final partial window complete the match"
        );
    }

    #[test]
    fn stats_windows_counted() {
        let config = cfg(Order::Sequential, Representation::Sketch, false);
        let mut det = Detector::new(config, QuerySet::new());
        for i in 0..23u64 {
            det.push_keyframe(i, i);
        }
        det.finish();
        assert_eq!(det.stats().windows, 5); // 4 full + 1 partial
    }

    #[test]
    #[should_panic(expected = "query sketches must use K")]
    fn k_mismatch_is_rejected() {
        let config = cfg(Order::Sequential, Representation::Bit, true);
        let wrong_family = MinHashFamily::new(K + 1, 0);
        let queries =
            QuerySet::from_queries(vec![Query::from_cell_ids(1, &wrong_family, &[1, 2])]);
        let _ = Detector::new(config, queries);
    }
}
