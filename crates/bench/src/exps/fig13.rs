//! Figure 13 — precision and recall of the proposed Bit method on the
//! tampered VS2 stream, across the similarity threshold δ.
//!
//! Expected shape: precision stays high across the sweep; recall is high
//! at moderate δ and falls as δ approaches the copies' actual set
//! similarity ceiling (the tamper pipeline costs the copies a fraction of
//! their cell ids).

use crate::table::{f2, f3};
use crate::{Ctx, Scale, Table};
use vdsms_core::{DetectorConfig, Order, Representation};
use vdsms_workload::StreamKind;

/// Run the sweep.
pub fn run(ctx: &mut Ctx, scale: Scale) -> Table {
    let m = ctx.library().len();
    let mut table = Table::new(
        "Figure 13 — precision & recall of the Bit method on VS2 vs δ",
        &["δ", "precision", "recall", "detections"],
    );
    table.note(format!("m = {m} queries, K = 800, w = 5 s, BitIndex/Seq"));
    for delta in scale.delta_sweep() {
        let cfg = DetectorConfig {
            delta,
            window_keyframes: ctx.spec().window_keyframes(5.0),
            order: Order::Sequential,
            representation: Representation::Bit,
            use_index: true,
            ..Default::default()
        };
        let res = ctx.run_engine(StreamKind::Vs2, cfg, m);
        table.push(vec![
            f2(delta),
            f3(res.pr.precision),
            f3(res.pr.recall),
            res.pr.detections.to_string(),
        ]);
    }
    table
}
