// Fixture: the same decoding written safely — widening conversions,
// explicit casts, wrapping/checked methods, and arithmetic on values
// that never touched the stream. Expected: zero findings.
fn decode_len(buf: &mut Reader) -> u32 {
    let hi = buf.get_u8();
    let word = (u32::from(hi) << 8) | u32::from(buf.get_u8());
    let wide = (hi as u32) * 4;
    let wrapped = hi.wrapping_mul(3);
    let checked = word.checked_add(1);
    let local = 2 + 3;
    finish(word, wide, wrapped, checked, local)
}
