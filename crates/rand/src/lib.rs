//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network and no vendored registry, so this
//! workspace ships the small API subset it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++ seeded via
//! SplitMix64) and the [`Rng`] methods `gen`, `gen_range` and `gen_bool`.
//! The stream of values differs from upstream `rand`'s ChaCha-based
//! `StdRng` — everything in this workspace that consumes randomness is
//! seeded explicitly and derives its expectations from the same generator,
//! so only determinism matters, not the exact sequence.

#![forbid(unsafe_code)]

/// A source of 64-bit random words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole state derives from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types with uniform range sampling, used by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range called with empty range");
        T::sample_inclusive(rng, low, high)
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = ((high as i128).wrapping_sub(low as i128) as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Uniform double in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (high - low) * unit_f64(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        // The endpoint has measure zero; the half-open draw is fine.
        low + (high - low) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (high - low) * unit_f64(rng) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (high - low) * unit_f64(rng) as f32
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64 step, used to expand a 64-bit seed into full state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
            let u = rng.gen_range(3usize..=3);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn unit_values_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let draws: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|&v| (0.0..1.0).contains(&v)));
        assert!(draws.iter().any(|&v| v < 0.1));
        assert!(draws.iter().any(|&v| v > 0.9));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "{hits}");
    }
}
