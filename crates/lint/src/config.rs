//! `lint.toml` — per-crate rule configuration.
//!
//! The parser accepts the small TOML subset the gate needs (no external
//! TOML dependency, per the workspace's offline stand-in policy):
//!
//! ```toml
//! # comment
//! [default]              # rule defaults for every crate
//! no-wall-clock = true
//!
//! [crate.vdsms-core]     # per-crate overrides, by package name
//! no-panic-hot-path = true
//! ```
//!
//! Values are booleans. Unknown keys are rejected so a typo cannot
//! silently disable a rule.

use std::collections::BTreeMap;

/// Every switch a crate section may set.
pub const KNOWN_KEYS: &[&str] = &[
    "no-panic-hot-path",
    "no-alloc-hot-path",
    "deterministic-iteration",
    "no-wall-clock",
    "lock-discipline",
    "lock-order",
    "no-unchecked-arith",
    "float-determinism",
    "taint-unchecked-flow",
    "loop-progress",
    "no-swallowed-error",
    "unsafe-audit",
    "shared-state-discipline",
    "guard-across-blocking",
    "channel-protocol",
    // `unsafe-allowed = true` exempts a crate from the
    // `#![forbid(unsafe_code)]` requirement (the parking_lot shim);
    // `// SAFETY:` comments stay mandatory on its unsafe blocks.
    "unsafe-allowed",
];

/// Effective rule switches for one crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSet {
    /// Switch per rule id / flag, keyed by the entries of [`KNOWN_KEYS`].
    pub switches: BTreeMap<String, bool>,
}

impl RuleSet {
    /// The gate's built-in defaults. The hot-path rules are globally on
    /// because they are reachability-gated (a crate with no function
    /// reachable from a `// vdsms-lint: entry` marker gets no findings);
    /// `deterministic-iteration` and `no-unchecked-arith` stay opt-in
    /// per crate (they assert crate-specific contracts).
    pub fn builtin_default() -> RuleSet {
        let mut switches = BTreeMap::new();
        switches.insert("no-panic-hot-path".to_string(), true);
        switches.insert("no-alloc-hot-path".to_string(), true);
        switches.insert("deterministic-iteration".to_string(), false);
        switches.insert("no-wall-clock".to_string(), true);
        switches.insert("lock-discipline".to_string(), true);
        switches.insert("lock-order".to_string(), true);
        switches.insert("no-unchecked-arith".to_string(), false);
        switches.insert("float-determinism".to_string(), true);
        // `taint-unchecked-flow` asserts a codec-grade input contract and
        // stays opt-in per crate, like `no-unchecked-arith`; the other
        // two v3 rules are cheap and reachability- or resolution-gated.
        switches.insert("taint-unchecked-flow".to_string(), false);
        switches.insert("loop-progress".to_string(), true);
        switches.insert("no-swallowed-error".to_string(), true);
        switches.insert("unsafe-audit".to_string(), true);
        // The concurrency rules are cheap (they only look at summaries
        // that mention spawns/channels/guards) and default-on: a race or
        // deadlock shape is a bug in any crate, not a per-crate contract.
        switches.insert("shared-state-discipline".to_string(), true);
        switches.insert("guard-across-blocking".to_string(), true);
        switches.insert("channel-protocol".to_string(), true);
        switches.insert("unsafe-allowed".to_string(), false);
        RuleSet { switches }
    }

    /// A rule set with every rule enabled (used by fixture tests).
    pub fn all_enabled() -> RuleSet {
        let mut rs = RuleSet::builtin_default();
        for (k, v) in rs.switches.iter_mut() {
            *v = k != "unsafe-allowed";
        }
        rs
    }

    /// Whether switch `key` is on.
    pub fn enabled(&self, key: &str) -> bool {
        self.switches.get(key).copied().unwrap_or(false)
    }

    fn apply(&mut self, overrides: &BTreeMap<String, bool>) {
        for (k, v) in overrides {
            self.switches.insert(k.clone(), *v);
        }
    }
}

/// Parsed `lint.toml`: defaults plus per-crate overrides.
#[derive(Debug, Default)]
pub struct LintConfig {
    default: BTreeMap<String, bool>,
    per_crate: BTreeMap<String, BTreeMap<String, bool>>,
}

impl LintConfig {
    /// The effective rule set for crate `name`.
    pub fn rules_for(&self, name: &str) -> RuleSet {
        let mut rs = RuleSet::builtin_default();
        rs.apply(&self.default);
        if let Some(overrides) = self.per_crate.get(name) {
            rs.apply(overrides);
        }
        rs
    }

    /// Crate names with explicit sections (for config validation).
    pub fn configured_crates(&self) -> impl Iterator<Item = &str> {
        self.per_crate.keys().map(String::as_str)
    }

    /// A stable one-line serialization of the full configuration, part
    /// of the report-cache key: flipping any switch anywhere must
    /// invalidate the cached report. `BTreeMap` iteration keeps it
    /// deterministic across runs.
    pub fn fingerprint(&self) -> String {
        let mut out = String::from("default{");
        for (k, v) in &self.default {
            out.push_str(k);
            out.push(if *v { '+' } else { '-' });
        }
        out.push('}');
        for (name, switches) in &self.per_crate {
            out.push_str(name);
            out.push('{');
            for (k, v) in switches {
                out.push_str(k);
                out.push(if *v { '+' } else { '-' });
            }
            out.push('}');
        }
        out
    }
}

/// Configuration parse error with line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the offending entry.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Parse a `lint.toml` document.
pub fn parse_config(text: &str) -> Result<LintConfig, ConfigError> {
    let mut cfg = LintConfig::default();
    // None = before any section; entries there are rejected.
    let mut section: Option<String> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(ConfigError { line: lineno, message: "unterminated section header".into() });
            };
            let name = name.trim();
            if name != "default" && !name.starts_with("crate.") {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unknown section [{name}] (expected [default] or [crate.<name>])"),
                });
            }
            section = Some(name.to_string());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ConfigError { line: lineno, message: format!("expected `key = value`, got `{line}`") });
        };
        let key = key.trim();
        let value = value.trim();
        if !KNOWN_KEYS.contains(&key) {
            return Err(ConfigError { line: lineno, message: format!("unknown rule key `{key}`") });
        }
        let value = match value {
            "true" => true,
            "false" => false,
            other => {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("value for `{key}` must be true or false, got `{other}`"),
                })
            }
        };
        match &section {
            None => {
                return Err(ConfigError { line: lineno, message: "entry outside any section".into() })
            }
            Some(s) if s == "default" => {
                cfg.default.insert(key.to_string(), value);
            }
            Some(s) => {
                let name = s.trim_start_matches("crate.").to_string();
                cfg.per_crate.entry(name).or_default().insert(key.to_string(), value);
            }
        }
    }
    Ok(cfg)
}

/// Drop a trailing `# comment` (quotes are not needed in this subset).
fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_switch_sensitive() {
        let a = parse_config("[default]\nno-wall-clock = true\n").expect("parses");
        let b = parse_config("[default]\nno-wall-clock = true\n").expect("parses");
        assert_eq!(a.fingerprint(), b.fingerprint(), "same config, same fingerprint");
        let flipped = parse_config("[default]\nno-wall-clock = false\n").expect("parses");
        assert_ne!(a.fingerprint(), flipped.fingerprint(), "a flipped switch must show");
        let scoped =
            parse_config("[default]\nno-wall-clock = true\n[crate.vdsms-core]\nno-wall-clock = false\n")
                .expect("parses");
        assert_ne!(a.fingerprint(), scoped.fingerprint(), "per-crate overrides must show");
    }

    #[test]
    fn defaults_and_overrides_compose() {
        let cfg = parse_config(
            "
            [default]
            no-wall-clock = true
            [crate.vdsms-core]
            no-panic-hot-path = true
            [crate.vdsms-bench]
            no-wall-clock = false
            ",
        )
        .unwrap();
        assert!(cfg.rules_for("vdsms-core").enabled("no-panic-hot-path"));
        assert!(cfg.rules_for("vdsms-core").enabled("no-wall-clock"));
        assert!(!cfg.rules_for("vdsms-bench").enabled("no-wall-clock"));
        // Unmentioned crates keep the built-in defaults.
        assert!(cfg.rules_for("other").enabled("no-panic-hot-path"));
        assert!(!cfg.rules_for("other").enabled("no-unchecked-arith"));
    }

    #[test]
    fn unknown_keys_and_sections_are_rejected() {
        assert!(parse_config("[default]\nno-such-rule = true").is_err());
        assert!(parse_config("[weird]\n").is_err());
        assert!(parse_config("no-wall-clock = true").is_err());
        assert!(parse_config("[default]\nno-wall-clock = yes").is_err());
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let cfg = parse_config("# top\n[default] # section\nno-wall-clock = false # off\n").unwrap();
        assert!(!cfg.rules_for("x").enabled("no-wall-clock"));
    }
}
