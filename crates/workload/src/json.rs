//! A minimal JSON reader for the committed robustness-floor files.
//!
//! The workspace is offline (no serde); like `vdsms-lint`'s TOML reader,
//! this is a small hand-rolled parser covering exactly what the checked-in
//! `BENCH_robustness.json` needs: objects, arrays, strings, numbers,
//! booleans, and null. Objects preserve key order (a `Vec`, not a map) so
//! everything downstream stays deterministic.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document. Trailing non-whitespace is an
    /// error.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("unsupported escape '\\{}'", other as char))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn object_preserves_key_order() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        match v {
            Json::Obj(fields) => {
                assert_eq!(fields[0].0, "z");
                assert_eq!(fields[1].0, "a");
            }
            _ => panic!("not an object"),
        }
    }

    #[test]
    fn unicode_escape_decodes() {
        let v = Json::parse(r#""é""#).unwrap();
        assert_eq!(v.as_str(), Some("é"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a": }"#).is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn round_trips_the_committed_floor_shape() {
        let doc = r#"{
          "profiles": {
            "smoke": {
              "seed": 7,
              "floors": [
                {"attack": "speed-up", "strength": "medium", "detector": "seq",
                 "min_recall": 0.66, "min_precision": 0.9}
              ]
            }
          }
        }"#;
        let v = Json::parse(doc).unwrap();
        let floors =
            v.get("profiles").unwrap().get("smoke").unwrap().get("floors").unwrap();
        let first = &floors.as_arr().unwrap()[0];
        assert_eq!(first.get("attack").unwrap().as_str(), Some("speed-up"));
        assert_eq!(first.get("min_recall").unwrap().as_f64(), Some(0.66));
    }
}
