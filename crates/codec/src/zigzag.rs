//! Zigzag scan order and run-length coefficient coding.
//!
//! Coefficients are scanned in the classic JPEG zigzag order (low
//! frequencies first), then coded as: DC as a DPCM signed varint (delta
//! from the previous block's DC), followed by AC (run, level) tokens and an
//! end-of-block marker. Token layout:
//!
//! * `varint 0` — end of block (no more non-zero AC);
//! * `varint t > 0` — a run of `t - 1` zeros followed by one non-zero
//!   level, coded as a signed varint.
//!
//! Because the DC is always the *first* varint of a block, the partial
//! decoder can extract it and then cheaply token-skip the AC tail.

use crate::bitio::{ByteReader, ByteWriter};
use crate::dct::BLOCK_AREA;
use crate::{CodecError, Result};

/// `ZIGZAG[i]` is the row-major index of the `i`-th coefficient in scan
/// order.
#[rustfmt::skip]
pub const ZIGZAG: [usize; BLOCK_AREA] = [
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// Reorder a row-major level block into zigzag scan order.
pub fn scan(levels: &[i32; BLOCK_AREA]) -> [i32; BLOCK_AREA] {
    let mut out = [0i32; BLOCK_AREA];
    for (i, &pos) in ZIGZAG.iter().enumerate() {
        out[i] = levels[pos];
    }
    out
}

/// Inverse of [`scan`].
pub fn unscan(scanned: &[i32; BLOCK_AREA]) -> [i32; BLOCK_AREA] {
    let mut out = [0i32; BLOCK_AREA];
    for (i, &pos) in ZIGZAG.iter().enumerate() {
        out[pos] = scanned[i];
    }
    out
}

/// Encode one block of quantized levels (row-major). `prev_dc` is the DC
/// level of the previous block in the frame (0 for the first block);
/// returns this block's DC level for chaining.
pub fn encode_block(w: &mut ByteWriter, levels: &[i32; BLOCK_AREA], prev_dc: i32) -> i32 {
    let z = scan(levels);
    let dc = z[0];
    w.put_signed(i64::from(dc) - i64::from(prev_dc));
    let mut run: u64 = 0;
    for &lvl in &z[1..] {
        if lvl == 0 {
            run += 1;
        } else {
            w.put_varint(run + 1);
            w.put_signed(i64::from(lvl));
            run = 0;
        }
    }
    w.put_varint(0); // EOB
    dc
}

/// Decode one block into row-major levels. Returns the block's DC level.
pub fn decode_block(r: &mut ByteReader<'_>, prev_dc: i32) -> Result<([i32; BLOCK_AREA], i32)> {
    let mut z = [0i32; BLOCK_AREA];
    let dc_delta = r.get_signed()?;
    let dc = i64::from(prev_dc)
        .checked_add(dc_delta)
        .ok_or(CodecError::CorruptEntropy("dc out of range"))?;
    let dc = i32::try_from(dc).map_err(|_| CodecError::CorruptEntropy("dc out of range"))?;
    z[0] = dc;
    let mut idx = 1usize;
    loop {
        let tok = r.get_varint()?;
        if tok == 0 {
            break;
        }
        // `tok >= 1` here, so the wrapping subtraction cannot wrap; the
        // try_from guards 32-bit targets where `tok - 1` exceeds usize.
        let run = usize::try_from(tok.wrapping_sub(1))
            .map_err(|_| CodecError::CorruptEntropy("AC index out of block"))?;
        idx = idx
            .checked_add(run)
            .ok_or(CodecError::CorruptEntropy("AC index out of block"))?;
        if idx >= BLOCK_AREA {
            return Err(CodecError::CorruptEntropy("AC index out of block"));
        }
        let lvl = r.get_signed()?;
        if lvl == 0 {
            return Err(CodecError::CorruptEntropy("zero AC level"));
        }
        z[idx] =
            i32::try_from(lvl).map_err(|_| CodecError::CorruptEntropy("AC level out of range"))?;
        idx += 1;
    }
    Ok((unscan(&z), dc))
}

/// Decode *only* the DC level of a block, skipping the AC tail by token
/// scanning (no dequantization, no inverse DCT, no AC materialization).
/// Returns the DC level. This is the partial-decode inner loop.
pub fn decode_block_dc_only(r: &mut ByteReader<'_>, prev_dc: i32) -> Result<i32> {
    let dc_delta = r.get_signed()?;
    let dc = i64::from(prev_dc)
        .checked_add(dc_delta)
        .ok_or(CodecError::CorruptEntropy("dc out of range"))?;
    let dc = i32::try_from(dc).map_err(|_| CodecError::CorruptEntropy("dc out of range"))?;
    loop {
        let tok = r.get_varint()?;
        if tok == 0 {
            return Ok(dc);
        }
        // Skip the level varint without zigzag-decoding it.
        let _ = r.get_varint()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; BLOCK_AREA];
        for &p in &ZIGZAG {
            assert!(!seen[p], "duplicate zigzag entry");
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zigzag_starts_with_dc_then_first_row_and_column() {
        assert_eq!(&ZIGZAG[..4], &[0, 1, 8, 16]);
        assert_eq!(ZIGZAG[BLOCK_AREA - 1], 63);
    }

    #[test]
    fn scan_unscan_round_trip() {
        let mut levels = [0i32; BLOCK_AREA];
        for (i, l) in levels.iter_mut().enumerate() {
            *l = i as i32 - 30;
        }
        assert_eq!(unscan(&scan(&levels)), levels);
    }

    fn sparse_block() -> [i32; BLOCK_AREA] {
        let mut levels = [0i32; BLOCK_AREA];
        levels[0] = 37; // DC
        levels[1] = -4;
        levels[8] = 2;
        levels[27] = -1;
        levels[63] = 5;
        levels
    }

    #[test]
    fn block_round_trip() {
        let levels = sparse_block();
        let mut w = ByteWriter::new();
        let dc = encode_block(&mut w, &levels, 10);
        assert_eq!(dc, 37);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let (decoded, dc2) = decode_block(&mut r, 10).unwrap();
        assert_eq!(decoded, levels);
        assert_eq!(dc2, 37);
        assert!(r.is_at_end());
    }

    #[test]
    fn dc_only_matches_full_decode_and_leaves_same_cursor() {
        let levels = sparse_block();
        let mut w = ByteWriter::new();
        encode_block(&mut w, &levels, 0);
        encode_block(&mut w, &levels, 37); // a second block right after
        let bytes = w.into_bytes();

        let mut full = ByteReader::new(&bytes);
        let (_, dc_a) = decode_block(&mut full, 0).unwrap();
        let pos_full = full.position();

        let mut partial = ByteReader::new(&bytes);
        let dc_b = decode_block_dc_only(&mut partial, 0).unwrap();
        assert_eq!(dc_a, dc_b);
        assert_eq!(partial.position(), pos_full, "partial decode must end on the block boundary");
    }

    #[test]
    fn empty_block_is_one_delta_plus_eob() {
        let levels = [0i32; BLOCK_AREA];
        let mut w = ByteWriter::new();
        encode_block(&mut w, &levels, 0);
        assert_eq!(w.len(), 2); // signed varint 0 + EOB 0
    }

    #[test]
    fn corrupt_run_is_detected() {
        let mut w = ByteWriter::new();
        w.put_signed(0); // DC delta
        w.put_varint(65); // run of 64 zeros: overruns the block
        w.put_signed(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(decode_block(&mut r, 0), Err(CodecError::CorruptEntropy(_))));
    }

    #[test]
    fn dense_block_round_trip() {
        let mut levels = [0i32; BLOCK_AREA];
        for (i, l) in levels.iter_mut().enumerate() {
            *l = (i as i32 % 7) - 3; // includes zeros interleaved
        }
        let mut w = ByteWriter::new();
        encode_block(&mut w, &levels, -5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let (decoded, _) = decode_block(&mut r, -5).unwrap();
        assert_eq!(decoded, levels);
    }
}
