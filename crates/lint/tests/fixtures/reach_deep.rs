// Fixture (crate `vdsms-c` of the reachability trio): the panic site,
// three crates from the entry point. `cold` has the same unwrap but is
// unreachable from any entry, so it must stay silent.
pub fn danger(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn cold(x: Option<u32>) -> u32 {
    x.unwrap()
}
