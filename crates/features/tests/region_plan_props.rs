//! Property tests for the precomputed region-averaging plan and the
//! allocation-free fingerprint path: both must reproduce the naive
//! reference implementations *bit-exactly* (a stronger guarantee than
//! the 1-ulp tolerance the design budget allows), across randomized
//! frame geometries including broadcast-shaped grids.

use proptest::prelude::*;
use vdsms_codec::DcFrame;
use vdsms_features::{
    normalize, normalize_in_place, region_averages, select_dims, select_dims_into, FeatureConfig,
    FeatureExtractor, RegionPlan,
};

/// A synthetic DC frame with values spanning the codec's real DC range
/// (orthonormal DCT: `8 × (mean pixel − 128)` ∈ [−1024, 1016]).
fn arb_dc_frame(blocks_w: u32, blocks_h: u32) -> impl Strategy<Value = DcFrame> {
    proptest::collection::vec(-1024.0f32..1016.0, (blocks_w * blocks_h) as usize)
        .prop_map(move |dc| DcFrame { frame_index: 0, blocks_w, blocks_h, dc })
}

/// Random geometry with `blocks ≥ regions` in both axes (the contract
/// both implementations assert).
fn arb_geometry() -> impl Strategy<Value = (u32, u32, u32, u32)> {
    (1u32..7, 1u32..7, 0u32..42, 0u32..34)
        .prop_map(|(rows, cols, dw, dh)| (cols + dw, rows + dh, rows, cols))
}

/// 1-D overlap weight of block `b` with region `r` — the same closed
/// form `RegionPlan::build` uses (kept in sync by these tests).
fn overlap(b: u32, r: u32, n: u32, total: u32) -> f64 {
    let r0 = f64::from(r) * f64::from(total) / f64::from(n);
    let r1 = f64::from(r + 1) * f64::from(total) / f64::from(n);
    (f64::from(b) + 1.0).min(r1) - f64::from(b).max(r0)
}

/// The naive per-frame reference: re-derives every overlap weight and
/// accumulates in double-loop visit order. The production crate no
/// longer carries this implementation (`region_averages` delegates to
/// `RegionPlan`), so this inlined copy is the bit-exactness ground
/// truth the SoA/padded kernel is held to.
fn naive_region_averages(dc: &DcFrame, rows: u32, cols: u32) -> Vec<f32> {
    assert!(rows >= 1 && cols >= 1);
    assert!(dc.blocks_h >= rows && dc.blocks_w >= cols);
    let mut out = Vec::with_capacity((rows * cols) as usize);
    for ry in 0..rows {
        let by0 = (f64::from(ry) * f64::from(dc.blocks_h) / f64::from(rows)).floor() as u32;
        let by1 = ((f64::from(ry + 1) * f64::from(dc.blocks_h) / f64::from(rows)).ceil() as u32)
            .min(dc.blocks_h);
        for rx in 0..cols {
            let bx0 = (f64::from(rx) * f64::from(dc.blocks_w) / f64::from(cols)).floor() as u32;
            let bx1 = ((f64::from(rx + 1) * f64::from(dc.blocks_w) / f64::from(cols)).ceil()
                as u32)
                .min(dc.blocks_w);
            let mut sum = 0.0f64;
            let mut weight = 0.0f64;
            for by in by0..by1 {
                let wy = overlap(by, ry, rows, dc.blocks_h);
                if wy <= 0.0 {
                    continue;
                }
                for bx in bx0..bx1 {
                    let wx = overlap(bx, rx, cols, dc.blocks_w);
                    if wx <= 0.0 {
                        continue;
                    }
                    let w = wx * wy;
                    sum += w * f64::from(dc.dc[(by * dc.blocks_w + bx) as usize]);
                    weight += w;
                }
            }
            out.push((sum / weight) as f32);
        }
    }
    out
}

fn assert_plan_matches_naive(dc: &DcFrame, rows: u32, cols: u32) {
    let naive = naive_region_averages(dc, rows, cols);
    let delegated = region_averages(dc, rows, cols);
    let plan = RegionPlan::build(dc.blocks_w, dc.blocks_h, rows, cols);
    let mut planned = vec![0.0f32; naive.len()];
    plan.region_averages_into(&dc.dc, &mut planned);
    for (i, ((a, b), c)) in naive.iter().zip(&planned).zip(&delegated).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "region {i} differs: naive {a} vs planned {b} ({}x{} blocks, {cols}x{rows} regions)",
            dc.blocks_w,
            dc.blocks_h,
        );
        assert_eq!(a.to_bits(), c.to_bits(), "region {i}: delegating region_averages diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The plan reproduces the naive averages bit-exactly on random
    /// geometries, including ones where blocks straddle region
    /// boundaries fractionally.
    #[test]
    fn plan_matches_naive_on_random_geometries(
        geom in arb_geometry(),
        seed in 0u64..1_000_000,
    ) {
        let (bw, bh, rows, cols) = geom;
        let n = (bw * bh) as usize;
        // Cheap deterministic fill (xorshift) — the geometry, not the
        // values, is what stresses the weight precomputation.
        let mut state = seed | 1;
        let dc: Vec<f32> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 2040) as f32 - 1024.0
            })
            .collect();
        let frame = DcFrame { frame_index: 0, blocks_w: bw, blocks_h: bh, dc };
        assert_plan_matches_naive(&frame, rows, cols);
    }

    /// NTSC-shaped frames (352×240 ⇒ 44×30 blocks) with the paper's 3×3
    /// regions: 44 blocks over 3 columns is fractional, so every column
    /// boundary splits a block.
    #[test]
    fn plan_matches_naive_on_ntsc_geometry(frame in arb_dc_frame(44, 30)) {
        assert_plan_matches_naive(&frame, 3, 3);
    }

    /// PAL-shaped frames (352×288 ⇒ 44×36 blocks), same fractional
    /// column boundaries with a taller grid.
    #[test]
    fn plan_matches_naive_on_pal_geometry(frame in arb_dc_frame(44, 36)) {
        assert_plan_matches_naive(&frame, 3, 3);
    }

    /// The in-place normalization matches the allocating one bit-exactly,
    /// including the degenerate constant-vector case.
    #[test]
    fn normalize_in_place_matches_allocating(
        vals in proptest::collection::vec(-1e6f32..1e6, 1..12),
        constant in any::<bool>(),
    ) {
        let vals = if constant { vec![vals[0]; vals.len()] } else { vals };
        let reference = normalize(&vals);
        let mut in_place = vals;
        normalize_in_place(&mut in_place);
        for (a, b) in reference.iter().zip(&in_place) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The in-slice dimension selection matches the allocating one for
    /// every legal `(D, d)` pair.
    #[test]
    fn select_dims_into_matches_allocating(
        normalized in proptest::collection::vec(0.0f32..=1.0, 1..12),
        d_raw in 1usize..12,
    ) {
        let d = d_raw.min(normalized.len());
        let reference = select_dims(&normalized, d);
        let mut selected = vec![0.0f32; d];
        select_dims_into(&normalized, &mut selected);
        prop_assert_eq!(reference, selected);
    }

    /// End to end: the scratch-based fingerprint equals the allocating
    /// fingerprint on every frame, with ONE scratch reused across frames
    /// of the same stream (the steady-state pooling pattern).
    #[test]
    fn fingerprint_into_matches_fingerprint(
        frames in proptest::collection::vec(arb_dc_frame(22, 15), 1..5),
    ) {
        let ex = FeatureExtractor::new(FeatureConfig::default());
        let mut scratch = ex.scratch();
        for frame in &frames {
            prop_assert_eq!(ex.fingerprint_into(&mut scratch, frame), ex.fingerprint(frame));
        }
    }
}
