//! Tamper / editing pipeline.
//!
//! Section VI of the paper constructs the `VS2` stream by editing the 200
//! short videos: "we alter 20–50 % of the color as well as the brightness,
//! add noises and change the resolutions of the short videos, re-compress
//! them using different frame rate (PAL: 352×288, 25 fps). We partition the
//! edited short videos into segments, reorder these segments without
//! affecting the contents."
//!
//! Every one of those operations is implemented here as an [`Edit`], and
//! [`EditPipeline::vs2_standard`] composes them with the paper's parameter
//! ranges. (Re-compression itself lives in `vdsms-codec`; this module
//! performs the pixel/temporal-domain edits.)

use crate::{Clip, Fps, Frame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_normal::sample_gaussian;

/// A tiny Box–Muller Gaussian sampler so we do not need `rand_distr`.
mod rand_distr_normal {
    use rand::Rng;

    /// Sample one standard-normal value via Box–Muller.
    pub fn sample_gaussian<R: Rng>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// One editing operation on a clip.
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// Multiply luma by `gain` and add `offset` (brightness / color / contrast
    /// alteration). `gain = 1.3` models a "+30 % color" edit.
    GainOffset {
        /// Multiplicative luma gain.
        gain: f64,
        /// Additive luma offset.
        offset: f64,
    },
    /// Add zero-mean Gaussian noise with standard deviation `sigma`.
    Noise {
        /// Noise standard deviation in luma units.
        sigma: f64,
        /// Seed for the noise stream.
        seed: u64,
    },
    /// Resample to a new resolution (bilinear).
    Resize {
        /// Target width.
        width: u32,
        /// Target height.
        height: u32,
    },
    /// Temporally resample to a new frame rate (nearest-frame), e.g.
    /// NTSC 29.97 fps → PAL 25 fps.
    ResampleFps {
        /// Target frame rate.
        target: Fps,
    },
    /// Split the clip into `segments` near-equal pieces and permute them.
    /// This is the paper's temporal re-ordering attack: content preserved,
    /// temporal order destroyed.
    SegmentReorder {
        /// Number of segments.
        segments: usize,
        /// Seed of the permutation.
        seed: u64,
    },
}

impl Edit {
    /// Apply this edit to a clip, producing the edited clip.
    pub fn apply(&self, clip: &Clip) -> Clip {
        match *self {
            Edit::GainOffset { gain, offset } => {
                let frames = clip
                    .frames()
                    .iter()
                    .map(|f| {
                        let data = f
                            .samples()
                            .iter()
                            .map(|&v| (f64::from(v) * gain + offset).round().clamp(0.0, 255.0) as u8)
                            .collect();
                        Frame::from_raw(f.width(), f.height(), data)
                    })
                    .collect();
                Clip::new(frames, clip.fps())
            }
            Edit::Noise { sigma, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let frames = clip
                    .frames()
                    .iter()
                    .map(|f| {
                        let data = f
                            .samples()
                            .iter()
                            .map(|&v| {
                                let n = sample_gaussian(&mut rng) * sigma;
                                (f64::from(v) + n).round().clamp(0.0, 255.0) as u8
                            })
                            .collect();
                        Frame::from_raw(f.width(), f.height(), data)
                    })
                    .collect();
                Clip::new(frames, clip.fps())
            }
            Edit::Resize { width, height } => {
                let frames = clip.frames().iter().map(|f| f.resize(width, height)).collect();
                Clip::new(frames, clip.fps())
            }
            Edit::ResampleFps { target } => {
                let n_out = target.frames_in(clip.duration()).max(1);
                let ratio = clip.len() as f64 / n_out as f64;
                let frames = (0..n_out)
                    .map(|i| {
                        let src = ((i as f64 + 0.5) * ratio) as usize;
                        clip.frames()[src.min(clip.len() - 1)].clone()
                    })
                    .collect();
                Clip::new(frames, target)
            }
            Edit::SegmentReorder { segments, seed } => {
                let n = segments.min(clip.len()).max(1);
                let mut segs = clip.split_segments(n);
                let mut rng = StdRng::seed_from_u64(seed);
                // Fisher–Yates; guaranteed not to be the identity for n >= 2
                // (re-shuffle in the unlikely identity case) so the edit
                // always actually reorders.
                let mut order: Vec<usize> = (0..n).collect();
                loop {
                    for i in (1..n).rev() {
                        order.swap(i, rng.gen_range(0..=i));
                    }
                    if n < 2 || order.iter().enumerate().any(|(i, &p)| i != p) {
                        break;
                    }
                }
                let mut reordered = Vec::with_capacity(n);
                for &p in &order {
                    reordered.push(segs[p].clone());
                }
                segs.clear();
                Clip::concat(reordered)
            }
        }
    }
}

/// An ordered sequence of edits applied left to right.
#[derive(Debug, Clone, Default)]
pub struct EditPipeline {
    edits: Vec<Edit>,
}

impl EditPipeline {
    /// An empty pipeline (identity).
    pub fn new() -> EditPipeline {
        EditPipeline { edits: Vec::new() }
    }

    /// Append an edit.
    pub fn then(mut self, edit: Edit) -> EditPipeline {
        self.edits.push(edit);
        self
    }

    /// The edits in application order.
    pub fn edits(&self) -> &[Edit] {
        &self.edits
    }

    /// Apply all edits in order.
    pub fn apply(&self, clip: &Clip) -> Clip {
        let mut cur = clip.clone();
        for e in &self.edits {
            cur = e.apply(&cur);
        }
        cur
    }

    /// The PAL-equivalent frame rate for a source at `fps`: scaled by the
    /// paper's NTSC→PAL ratio `25 / 29.97` so that scaled-down simulation
    /// rates keep the same temporal compression as a real 29.97 → 25 fps
    /// re-encode.
    pub fn pal_equivalent(fps: Fps) -> Fps {
        // 25 / (30000/1001) = 25025/30000 = 1001/1200.
        Fps { num: fps.num * 1001, den: fps.den * 1200 }
    }

    /// The paper's `VS2` edit suite with parameters drawn from the published
    /// ranges: 20–50 % brightness/color alteration, additive noise,
    /// resolution change to PAL geometry (scaled by the clip's own scale),
    /// 29.97 → 25 fps re-sampling (scaled via
    /// [`EditPipeline::pal_equivalent`]), and segment re-ordering.
    ///
    /// `seed` controls all random draws; `reorder_segments` controls how
    /// aggressively the temporal order is destroyed (the paper reorders at
    /// the "shot or even frame" level — 4–10 segments per clip is typical
    /// for 30–300 s clips).
    pub fn vs2_standard(
        seed: u64,
        clip_width: u32,
        clip_height: u32,
        clip_fps: Fps,
        reorder_segments: usize,
    ) -> EditPipeline {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_ed17);
        let alter: f64 = rng.gen_range(0.20..=0.50);
        // Randomly brighten or darken. Darkening uses the full 20-50 %
        // range; brightening combines a mild gain with a 20-50 %-of-mid-gray
        // offset, so the edit stays a (near-)affine map on the visible
        // range — a hard-clipped gain is not invertible by the paper's
        // Eq. 1 normalization for *any* feature scheme, and the paper's
        // real-video edits likewise keep highlights unsaturated (see
        // DESIGN.md substitution notes).
        let (gain, offset) = if rng.gen_bool(0.5) {
            (1.0 + alter.min(0.15), alter * 25.0)
        } else {
            (1.0 - alter, -rng.gen_range(5.0..15.0))
        };
        // PAL has 288 lines vs NTSC's 240: scale height by 1.2, keep width.
        let pal_h = ((clip_height as f64) * 288.0 / 240.0).round() as u32;
        EditPipeline::new()
            .then(Edit::GainOffset { gain, offset })
            .then(Edit::Noise { sigma: rng.gen_range(1.0..3.0), seed: seed ^ 0xabcd })
            .then(Edit::Resize { width: clip_width, height: pal_h })
            .then(Edit::ResampleFps { target: Self::pal_equivalent(clip_fps) })
            .then(Edit::SegmentReorder { segments: reorder_segments, seed: seed ^ 0x0def })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{ClipGenerator, SourceSpec};

    fn test_clip(seed: u64) -> Clip {
        let spec = SourceSpec {
            width: 48,
            height: 32,
            fps: Fps::integer(10),
            seed,
            min_scene_s: 1.0,
            max_scene_s: 2.0,
            motifs: None,
        };
        ClipGenerator::new(spec).clip(4.0)
    }

    #[test]
    fn gain_offset_scales_mean() {
        let c = test_clip(1);
        let edited = Edit::GainOffset { gain: 1.2, offset: 5.0 }.apply(&c);
        let m0 = c.frames()[0].mean();
        let m1 = edited.frames()[0].mean();
        // Allow clipping slack.
        assert!((m1 - (m0 * 1.2 + 5.0)).abs() < 6.0, "mean {m0} -> {m1}");
    }

    #[test]
    fn noise_perturbs_but_preserves_mean() {
        let c = test_clip(2);
        let edited = Edit::Noise { sigma: 2.0, seed: 9 }.apply(&c);
        let diff = c.frames()[0].mean_abs_diff(&edited.frames()[0]);
        assert!(diff > 0.5 && diff < 5.0, "noise diff {diff}");
        assert!((c.frames()[0].mean() - edited.frames()[0].mean()).abs() < 1.0);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let c = test_clip(2);
        let a = Edit::Noise { sigma: 2.0, seed: 9 }.apply(&c);
        let b = Edit::Noise { sigma: 2.0, seed: 9 }.apply(&c);
        assert_eq!(a.frames(), b.frames());
    }

    #[test]
    fn resample_fps_changes_length_proportionally() {
        let c = test_clip(3); // 40 frames @10fps = 4 s
        let edited = Edit::ResampleFps { target: Fps::integer(5) }.apply(&c);
        assert_eq!(edited.len(), 20);
        assert_eq!(edited.fps(), Fps::integer(5));
        assert!((edited.duration() - c.duration()).abs() < 0.2);
    }

    #[test]
    fn segment_reorder_preserves_multiset_of_frames() {
        let c = test_clip(4);
        let edited = Edit::SegmentReorder { segments: 5, seed: 11 }.apply(&c);
        assert_eq!(edited.len(), c.len());
        assert_ne!(edited.frames(), c.frames(), "reorder must not be identity");
        // Same frames as a multiset: compare sorted sample sums.
        let mut a: Vec<u64> = c
            .frames()
            .iter()
            .map(|f| f.samples().iter().map(|&v| u64::from(v)).sum())
            .collect();
        let mut b: Vec<u64> = edited
            .frames()
            .iter()
            .map(|f| f.samples().iter().map(|&v| u64::from(v)).sum())
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn vs2_pipeline_runs_and_changes_geometry() {
        let c = test_clip(5);
        let pipe = EditPipeline::vs2_standard(42, c.width(), c.height(), c.fps(), 4);
        let edited = pipe.apply(&c);
        assert_eq!(edited.fps(), EditPipeline::pal_equivalent(c.fps()));
        // The PAL-equivalent of 10 fps is ~8.34 fps: fewer frames, same
        // duration, like a real 29.97 -> 25 re-encode.
        assert!(edited.len() < c.len());
        assert!((edited.duration() - c.duration()).abs() < 0.5);
        assert_eq!(edited.width(), c.width());
        assert!(edited.height() > c.height(), "PAL re-encode must add lines");
    }

    #[test]
    fn pipeline_order_matters_and_identity_is_noop() {
        let c = test_clip(6);
        let id = EditPipeline::new().apply(&c);
        assert_eq!(id.frames(), c.frames());
    }
}
