//! # vdsms — continuous content-based copy detection over streaming videos
//!
//! A from-scratch Rust implementation of Yan, Ooi & Zhou, *Continuous
//! Content-Based Copy Detection over Streaming Videos* (ICDE 2008): a
//! Video Data Stream Management System that continuously monitors many
//! query videos against broadcast video streams and reports content-based
//! copies — robust to re-encoding, brightness/color edits, resolution and
//! frame-rate changes, and **temporal re-ordering**.
//!
//! ## Architecture
//!
//! ```text
//!   bitstream ──► vdsms-codec ──► DC coefficients of key frames
//!                                 (partial decode, no IDCT)
//!                      │
//!                      ▼
//!             vdsms-features ──► cell id per key frame
//!             (Eq. 1 normalization + grid–pyramid partition)
//!                      │
//!                      ▼
//!               vdsms-sketch ──► K-min-hash sketch per basic window
//!                      │
//!                      ▼
//!                 vdsms-core ──► detections
//!        (bit signatures ∘ Lemma-2 pruning ∘ HQ query index,
//!         Sequential/Geometric candidate maintenance)
//! ```
//!
//! The supporting crates `vdsms-video` (synthetic content + tamper
//! pipeline), `vdsms-workload` (the paper's VS1/VS2 evaluation streams)
//! and `vdsms-baselines` (the Seq/Warp comparison methods) complete the
//! reproduction; `vdsms-bench` regenerates every table and figure.
//!
//! ## Quickstart
//!
//! The [`Monitor`] type wires the whole pipeline together:
//!
//! ```
//! use vdsms::{Monitor, MonitorBuilder};
//! use vdsms::video::source::{ClipGenerator, SourceSpec};
//! use vdsms::video::Fps;
//! use vdsms::codec::{Encoder, EncoderConfig};
//!
//! // A clip we want to monitor for (in reality: an ad, a film sample...).
//! let spec = SourceSpec {
//!     width: 96, height: 64, fps: Fps::integer(10), seed: 7,
//!     min_scene_s: 1.0, max_scene_s: 3.0, motifs: None,
//! };
//! let clip = ClipGenerator::new(spec.clone()).clip(10.0);
//!
//! // Subscribe it, then feed a broadcast stream that contains it.
//! // (Window sizes are in key frames: gop 5 at 10 fps = 2 key frames/s,
//! // so 4 key frames = a 2-second basic window.)
//! let enc = EncoderConfig { gop: 5, quality: 80, motion_search: true };
//! let mut monitor = MonitorBuilder::new()
//!     .detector(vdsms::DetectorConfig { window_keyframes: 4, ..Default::default() })
//!     .query_encoder(enc)
//!     .build();
//! monitor.subscribe_clip(42, &clip);
//!
//! let mut broadcast = ClipGenerator::new(SourceSpec { seed: 9, ..spec }).clip(20.0);
//! broadcast.append(clip.clone());
//! let bitstream = Encoder::encode_clip(&broadcast, enc);
//!
//! let detections = monitor.watch_bitstream(&bitstream).unwrap();
//! assert!(detections.iter().any(|d| d.query_id == 42));
//! ```

#![forbid(unsafe_code)]

pub use vdsms_baselines as baselines;
pub use vdsms_codec as codec;
pub use vdsms_core as core;
pub use vdsms_features as features;
pub use vdsms_sketch as sketch;
pub use vdsms_video as video;
pub use vdsms_workload as workload;

pub use vdsms_core::{Detection, Detector, DetectorConfig, Order, Query, QueryId, Representation};
pub use vdsms_features::FeatureConfig;

use vdsms_codec::{CodecError, DcFrame, Encoder, EncoderConfig, PartialDecoder};
use vdsms_core::QuerySet;
use vdsms_features::{FeatureExtractor, FingerprintScratch};
use vdsms_video::Clip;

/// Builder for a [`Monitor`].
#[derive(Debug, Clone, Default)]
pub struct MonitorBuilder {
    features: FeatureConfig,
    detector: DetectorConfig,
    query_encoder: EncoderConfig,
}

impl MonitorBuilder {
    /// Defaults: the paper's Table I parameters.
    pub fn new() -> MonitorBuilder {
        MonitorBuilder::default()
    }

    /// Override the feature-extraction configuration.
    pub fn features(mut self, fc: FeatureConfig) -> MonitorBuilder {
        self.features = fc;
        self
    }

    /// Override the detector configuration.
    pub fn detector(mut self, cfg: DetectorConfig) -> MonitorBuilder {
        self.detector = cfg;
        self
    }

    /// Override the encoder settings used to fingerprint query clips.
    pub fn query_encoder(mut self, cfg: EncoderConfig) -> MonitorBuilder {
        self.query_encoder = cfg;
        self
    }

    /// Build the monitor.
    pub fn build(self) -> Monitor {
        self.detector.validate();
        let extractor = FeatureExtractor::new(self.features);
        let scratch = extractor.scratch();
        Monitor {
            extractor,
            detector: Detector::new(self.detector, QuerySet::new()),
            query_encoder: self.query_encoder,
            frame: DcFrame::empty(),
            scratch,
        }
    }
}

/// End-to-end copy monitor: subscribe query clips, feed compressed video,
/// collect detections.
pub struct Monitor {
    extractor: FeatureExtractor,
    detector: Detector,
    query_encoder: EncoderConfig,
    /// Pooled DC buffer for the fused ingestion loop — reused across every
    /// key frame of every [`Self::watch_bitstream`] call.
    frame: DcFrame,
    /// Pooled fingerprint scratch (region plan + feature buffers).
    scratch: FingerprintScratch,
}

impl Monitor {
    /// Subscribe a query given as pixel frames (it is encoded and
    /// fingerprinted through the same compressed-domain pipeline the
    /// stream goes through).
    ///
    /// # Panics
    /// Panics on duplicate ids.
    pub fn subscribe_clip(&mut self, id: QueryId, clip: &Clip) {
        let bytes = Encoder::encode_clip(clip, self.query_encoder);
        let dcs = PartialDecoder::new(&bytes)
            .expect("own encoding must parse")
            .decode_all()
            .expect("own encoding must decode");
        self.subscribe_dc_frames(id, &dcs);
    }

    /// Subscribe a query given as already-decoded DC frames.
    pub fn subscribe_dc_frames(&mut self, id: QueryId, dcs: &[DcFrame]) {
        let cells = self.extractor.fingerprint_sequence(dcs);
        let query = self.detector.make_query(id, &cells);
        self.detector.subscribe(query);
    }

    /// Unsubscribe a query. Returns `false` if it was not subscribed.
    pub fn unsubscribe(&mut self, id: QueryId) -> bool {
        self.detector.unsubscribe(id)
    }

    /// Feed one key frame's DC coefficients (streaming interface).
    /// Fingerprinting goes through the monitor's pooled scratch, so
    /// steady-state pushes allocate only for detection events.
    pub fn push_dc_frame(&mut self, dc: &DcFrame) -> Vec<Detection> {
        let cell = self.extractor.fingerprint_into(&mut self.scratch, dc);
        self.detector.push_keyframe(dc.frame_index, cell)
    }

    /// Process a whole compressed bitstream through the fused
    /// decode→feature→fingerprint pipeline (partial decoding only, pooled
    /// buffers, zero steady-state allocations per key frame) and return
    /// every detection. The final partial window is flushed.
    pub fn watch_bitstream(&mut self, bytes: &[u8]) -> Result<Vec<Detection>, CodecError> {
        let mut decoder = PartialDecoder::new(bytes)?;
        let mut out = Vec::new();
        // Inlined rather than calling `push_dc_frame`: the pooled frame
        // lives in `self`, and splitting the borrows keeps the loop free
        // of a per-frame `DcFrame` move or clone.
        while decoder.next_dc_frame_into(&mut self.frame)? {
            let cell = self.extractor.fingerprint_into(&mut self.scratch, &self.frame);
            out.extend(self.detector.push_keyframe(self.frame.frame_index, cell));
        }
        out.extend(self.detector.finish());
        Ok(out)
    }

    /// Flush the final partial window (streaming interface).
    pub fn finish(&mut self) -> Vec<Detection> {
        self.detector.finish()
    }

    /// Engine statistics.
    pub fn stats(&self) -> &vdsms_core::Stats {
        self.detector.stats()
    }

    /// Number of subscribed queries.
    pub fn query_count(&self) -> usize {
        self.detector.queries().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdsms_video::source::{ClipGenerator, SourceSpec};
    use vdsms_video::Fps;

    fn spec(seed: u64) -> SourceSpec {
        SourceSpec {
            width: 96,
            height: 64,
            fps: Fps::integer(10),
            seed,
            min_scene_s: 1.0,
            max_scene_s: 3.0,
            motifs: None,
        }
    }

    fn test_monitor() -> Monitor {
        // gop 5 at 10 fps = 2 key frames/s; a 4-key-frame window = 2 s.
        MonitorBuilder::new()
            .detector(DetectorConfig { window_keyframes: 4, ..Default::default() })
            .query_encoder(EncoderConfig { gop: 5, quality: 80, motion_search: true })
            .build()
    }

    fn test_encode(clip: &Clip) -> Vec<u8> {
        Encoder::encode_clip(clip, EncoderConfig { gop: 5, quality: 80, motion_search: true })
    }

    #[test]
    fn monitor_detects_planted_clip() {
        let clip = ClipGenerator::new(spec(7)).clip(10.0);
        let mut monitor = test_monitor();
        monitor.subscribe_clip(42, &clip);
        assert_eq!(monitor.query_count(), 1);

        let mut broadcast = ClipGenerator::new(spec(9)).clip(20.0);
        broadcast.append(clip);
        let bytes = test_encode(&broadcast);
        let dets = monitor.watch_bitstream(&bytes).unwrap();
        assert!(dets.iter().any(|d| d.query_id == 42), "{dets:?}");
    }

    #[test]
    fn monitor_is_quiet_on_clean_stream() {
        let clip = ClipGenerator::new(spec(7)).clip(10.0);
        let mut monitor = test_monitor();
        monitor.subscribe_clip(42, &clip);
        let broadcast = ClipGenerator::new(spec(11)).clip(30.0);
        let bytes = test_encode(&broadcast);
        let dets = monitor.watch_bitstream(&bytes).unwrap();
        assert!(dets.is_empty(), "{dets:?}");
    }

    #[test]
    fn monitor_rejects_garbage_stream() {
        let mut monitor = MonitorBuilder::new().build();
        assert!(monitor.watch_bitstream(b"garbage").is_err());
    }

    #[test]
    fn unsubscribe_stops_detection() {
        let clip = ClipGenerator::new(spec(7)).clip(10.0);
        let mut monitor = test_monitor();
        monitor.subscribe_clip(1, &clip);
        assert!(monitor.unsubscribe(1));
        assert!(!monitor.unsubscribe(1));
        let mut broadcast = ClipGenerator::new(spec(9)).clip(10.0);
        broadcast.append(clip);
        let bytes = test_encode(&broadcast);
        assert!(monitor.watch_bitstream(&bytes).unwrap().is_empty());
    }
}
