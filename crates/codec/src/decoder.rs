//! Full and partial decoders.
//!
//! [`Decoder`] reconstructs every pixel of every frame (what a player would
//! do). [`PartialDecoder`] implements the paper's compressed-domain fast
//! path: it skips P-frames entirely via their length prefix, and for each
//! I-frame recovers only the per-block DC coefficients — no dequantization
//! of AC terms, no inverse DCT, no pixel reconstruction. The cost ratio
//! between the two is the paper's motivation for compressed-domain feature
//! extraction.

use crate::bitio::{find_byte_le_one, ByteReader};
use crate::bitstream::{FrameRecord, FrameType, StreamHeader};
use crate::block::{store_block, store_diff_block, BlockGrid};
use crate::dct;
use crate::quant::QuantizerCache;
use crate::zigzag::decode_block;
use crate::{CodecError, Result};
use vdsms_video::Frame;

/// Per-block DC coefficients of one key frame — the partial decoder's
/// output and the feature layer's input.
#[derive(Debug, Clone, PartialEq)]
pub struct DcFrame {
    /// Index of this frame in the *stream* (counting skipped P-frames), so
    /// detections can be reported as stream positions.
    pub frame_index: u64,
    /// Blocks per row.
    pub blocks_w: u32,
    /// Block rows.
    pub blocks_h: u32,
    /// Dequantized DC coefficient per block, raster order. The DC of a
    /// block equals `8 × (mean pixel − 128)` under the orthonormal DCT.
    pub dc: Vec<f32>,
}

impl DcFrame {
    /// A detached, zero-block frame: the reusable buffer for
    /// [`PartialDecoder::next_dc_frame_into`]. Allocates nothing until
    /// the first decode sizes it.
    pub fn empty() -> DcFrame {
        DcFrame { frame_index: 0, blocks_w: 0, blocks_h: 0, dc: Vec::new() }
    }

    /// Mean luma of block `(bx, by)` implied by its DC coefficient.
    pub fn block_mean(&self, bx: u32, by: u32) -> f32 {
        assert!(bx < self.blocks_w && by < self.blocks_h);
        self.dc[(by * self.blocks_w + bx) as usize] / 8.0 + 128.0
    }
}

/// Degradation counters for one ingestion stream.
///
/// All zeros on a clean stream. Only the recovery-enabled decoder
/// ([`PartialDecoder::new_with_recovery`]) ever increments these; the
/// strict decoder surfaces the first corruption as an error instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestHealth {
    /// Frame records lost to corruption (each damaged span is accounted
    /// as at least one frame; the true count inside a span is unknowable
    /// once record boundaries are gone).
    pub frames_dropped: u64,
    /// Bytes discarded while scanning for the next plausible record.
    pub bytes_skipped: u64,
    /// Successful resynchronizations onto a later record boundary.
    pub resyncs: u64,
}

impl IngestHealth {
    /// Fold another stream's (or stream segment's) counters into this one.
    pub fn merge(&mut self, other: &IngestHealth) {
        self.frames_dropped += other.frames_dropped;
        self.bytes_skipped += other.bytes_skipped;
        self.resyncs += other.resyncs;
    }

    /// Whether no corruption has been observed.
    pub fn is_clean(&self) -> bool {
        *self == IngestHealth::default()
    }
}

/// Frame-record headers are `type(u8) quality(u8) payload_len(u32le)`.
const RECORD_HEADER_LEN: usize = 6;

/// If a plausible frame-record header starts at `p`, return the offset
/// one past the record's payload. "Plausible" = the exact invariants
/// [`FrameRecord::read`] enforces (kind byte 0/1, quality 1..=100) plus
/// an in-bounds payload length — the same format, no extra markers, so
/// recovery needs no bitstream change.
fn plausible_record_end(buf: &[u8], p: usize) -> Option<usize> {
    let kind = *buf.get(p)?;
    if kind > 1 {
        return None;
    }
    let quality = *buf.get(p.checked_add(1)?)?;
    if quality == 0 || quality > 100 {
        return None;
    }
    let len_bytes = buf.get(p.checked_add(2)?..p.checked_add(RECORD_HEADER_LEN)?)?;
    let payload_len = u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]);
    let end = p.checked_add(RECORD_HEADER_LEN)?.checked_add(payload_len as usize)?;
    (end <= buf.len()).then_some(end)
}

/// Count the frame records remaining in `reader`'s stream by walking the
/// fixed-width length prefixes only (no entropy decoding); returns
/// `(frames, key_frames)`. Stops at the first malformed record — the
/// actual decode surfaces that error.
fn scan_frame_counts(reader: &ByteReader<'_>) -> (usize, usize) {
    let mut r = reader.clone();
    let mut frames = 0usize;
    let mut intra = 0usize;
    while !r.is_at_end() {
        let Ok(rec) = FrameRecord::read(&mut r) else { break };
        if r.skip(rec.payload_len as usize).is_err() {
            break;
        }
        frames += 1;
        if rec.frame_type == FrameType::Intra {
            intra += 1;
        }
    }
    (frames, intra)
}

/// Full pixel decoder; iterates over reconstructed [`Frame`]s.
#[derive(Debug)]
pub struct Decoder<'a> {
    header: StreamHeader,
    grid: BlockGrid,
    reader: ByteReader<'a>,
    reference: Option<Frame>,
    frame_index: u64,
    quants: QuantizerCache,
}

impl<'a> Decoder<'a> {
    /// Open a bitstream, parsing its header.
    pub fn new(bytes: &'a [u8]) -> Result<Decoder<'a>> {
        let mut reader = ByteReader::new(bytes);
        let header = StreamHeader::read(&mut reader)?;
        let grid = BlockGrid::for_dims(header.width, header.height);
        Ok(Decoder {
            header,
            grid,
            reader,
            reference: None,
            frame_index: 0,
            quants: QuantizerCache::new(),
        })
    }

    /// Stream header.
    pub fn header(&self) -> &StreamHeader {
        &self.header
    }

    /// Decode the next frame, or `Ok(None)` at end of stream.
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        if self.reader.is_at_end() {
            return Ok(None);
        }
        let rec = FrameRecord::read(&mut self.reader)?;
        let quantizer = self.quants.for_quality(rec.quality);
        let mut frame = Frame::filled(self.header.width, self.header.height, 0);
        let mut prev_dc = 0i32;
        for by in 0..self.grid.blocks_h {
            for bx in 0..self.grid.blocks_w {
                let mv = match rec.frame_type {
                    FrameType::Intra => (0i8, 0i8),
                    FrameType::Predicted => {
                        let read_mv = |r: &mut crate::bitio::ByteReader<'_>| -> crate::Result<i8> {
                            i8::try_from(r.get_signed()?)
                                .map_err(|_| crate::CodecError::CorruptEntropy("motion vector out of range"))
                        };
                        (read_mv(&mut self.reader)?, read_mv(&mut self.reader)?)
                    }
                };
                let (levels, dc) = decode_block(&mut self.reader, prev_dc)?;
                prev_dc = dc;
                let samples = dct::inverse(&quantizer.dequantize(&levels));
                match rec.frame_type {
                    FrameType::Intra => store_block(&mut frame, bx, by, &samples),
                    FrameType::Predicted => {
                        let reference = self
                            .reference
                            .as_ref()
                            .ok_or(crate::CodecError::CorruptEntropy("P-frame before first I"))?;
                        store_diff_block(&mut frame, reference, bx, by, mv, &samples);
                    }
                }
            }
        }
        self.reference = Some(frame.clone());
        self.frame_index += 1;
        Ok(Some(frame))
    }

    /// Decode the whole stream into frames. The output is pre-sized by a
    /// prefix-only scan of the remaining records, so the returned `Vec`
    /// never reallocates during the decode.
    pub fn decode_all(mut self) -> Result<Vec<Frame>> {
        let (frames, _) = scan_frame_counts(&self.reader);
        let mut out = Vec::with_capacity(frames);
        while let Some(f) = self.next_frame()? {
            out.push(f);
        }
        Ok(out)
    }
}

/// Compressed-domain partial decoder; iterates over [`DcFrame`]s of key
/// frames only.
#[derive(Debug)]
pub struct PartialDecoder<'a> {
    header: StreamHeader,
    grid: BlockGrid,
    reader: ByteReader<'a>,
    frame_index: u64,
    quants: QuantizerCache,
    /// Corruption-recovery mode: instead of surfacing mid-record
    /// `CorruptEntropy`/`UnexpectedEof`, resync onto the next plausible
    /// record header and account the damage in [`Self::health`].
    recover: bool,
    health: IngestHealth,
    /// Pooled integer DC levels for the SoA dequant split: pass 1 parses
    /// varints and runs the DPCM prediction in pure integer code, pass 2
    /// is a branch-free multiply loop the compiler can vectorize. Sized
    /// once per stream geometry, like `DcFrame::dc`.
    dc_levels: Vec<i32>,
}

impl<'a> PartialDecoder<'a> {
    /// Open a bitstream, parsing its header.
    pub fn new(bytes: &'a [u8]) -> Result<PartialDecoder<'a>> {
        PartialDecoder::new_with_recovery(bytes, false)
    }

    /// Open a bitstream in strict or corruption-recovery mode.
    ///
    /// In recovery mode a mid-record error skips the damaged span (see
    /// [`IngestHealth`]) instead of killing the stream. A corrupt *stream
    /// header* is still an error in either mode: without the geometry
    /// there is nothing to decode into.
    pub fn new_with_recovery(bytes: &'a [u8], recover: bool) -> Result<PartialDecoder<'a>> {
        let mut reader = ByteReader::new(bytes);
        let header = StreamHeader::read(&mut reader)?;
        let grid = BlockGrid::for_dims(header.width, header.height);
        Ok(PartialDecoder {
            header,
            grid,
            reader,
            frame_index: 0,
            quants: QuantizerCache::new(),
            recover,
            health: IngestHealth::default(),
            dc_levels: Vec::new(),
        })
    }

    /// Re-open this decoder over a (possibly different) bitstream in
    /// place, keeping the pooled scratch — `dc_levels` and the memoized
    /// quantizer cache — so steady-state reopen→drain cycles perform zero
    /// heap allocations. On a header error the old stream state is left
    /// untouched, matching the constructor's strictness.
    pub fn reopen(&mut self, bytes: &'a [u8], recover: bool) -> Result<()> {
        let mut reader = ByteReader::new(bytes);
        let header = StreamHeader::read(&mut reader)?;
        self.grid = BlockGrid::for_dims(header.width, header.height);
        self.header = header;
        self.reader = reader;
        self.frame_index = 0;
        self.recover = recover;
        self.health = IngestHealth::default();
        Ok(())
    }

    /// Whether corruption recovery is enabled.
    pub fn recovery_enabled(&self) -> bool {
        self.recover
    }

    /// Degradation counters accumulated so far (all zero in strict mode
    /// and on clean streams).
    pub fn health(&self) -> IngestHealth {
        self.health
    }

    /// Stream header.
    pub fn header(&self) -> &StreamHeader {
        &self.header
    }

    /// Key frames per second implied by the stream's fps and GOP length.
    pub fn key_frame_rate(&self) -> f64 {
        self.header.fps.as_f64() / f64::from(self.header.gop)
    }

    /// Decode the next key frame's DC coefficients *into* a caller-owned
    /// buffer, returning `Ok(false)` at end of stream. P-frames are skipped
    /// in O(1) via their length prefix.
    ///
    /// This is the steady-state ingestion core: after the first key frame
    /// sizes `out.dc`, subsequent calls on the same geometry perform **zero
    /// heap allocations**. Per block it reads the DC delta varint and then
    /// byte-scans to the end-of-block marker
    /// ([`ByteReader::skip_past_zero_byte`]) instead of parsing every AC
    /// token — valid for this bitstream because no minimal varint of a
    /// non-zero value contains a `0x00` byte (see `vdsms_codec::zigzag`).
    // vdsms-lint: entry
    pub fn next_dc_frame_into(&mut self, out: &mut DcFrame) -> Result<bool> {
        // Termination: every iteration either returns or strictly advances
        // the cursor (a resync lands past the damaged record's start), so
        // the loop runs at most `buffer len + 1` times even on adversarial
        // input — the fuzz suite's byte-count bound.
        loop {
            if self.reader.is_at_end() {
                return Ok(false);
            }
            let record_start = self.reader.position();
            let rec = match FrameRecord::read(&mut self.reader) {
                Ok(rec) => rec,
                Err(e) => {
                    if self.recover {
                        self.resync(record_start);
                        continue;
                    }
                    return Err(e);
                }
            };
            match rec.frame_type {
                FrameType::Predicted => {
                    if self.reader.skip(rec.payload_len as usize).is_err() {
                        if self.recover {
                            self.resync(record_start);
                            continue;
                        }
                        return Err(CodecError::UnexpectedEof);
                    }
                    self.frame_index += 1;
                }
                FrameType::Intra => {
                    // Slice the payload out so the per-block loop cannot
                    // read past the frame boundary even on corrupt input.
                    let payload = match self.reader.get_bytes(rec.payload_len as usize) {
                        Ok(p) => p,
                        Err(e) => {
                            if self.recover {
                                self.resync(record_start);
                                continue;
                            }
                            return Err(e);
                        }
                    };
                    let index = self.frame_index;
                    self.frame_index += 1;
                    match self.decode_intra_payload(payload, rec.quality, index, out) {
                        Ok(()) => return Ok(true),
                        Err(e) => {
                            if self.recover {
                                // The length prefix was intact (the payload
                                // sliced cleanly), so the cursor already
                                // sits on the next record boundary: drop
                                // the frame, no rescan needed.
                                self.health.frames_dropped += 1;
                                continue;
                            }
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Decode one I-frame payload into `out`. On error `out` may hold a
    /// partial mix of this frame and the previous one; recovery callers
    /// discard it.
    fn decode_intra_payload(
        &mut self,
        payload: &[u8],
        quality: u8,
        index: u64,
        out: &mut DcFrame,
    ) -> Result<()> {
        let step = self.quants.for_quality(quality).dc_step();
        let n = self.grid.num_blocks();
        if self.dc_levels.len() != n {
            // vdsms-lint: allow(no-alloc-hot-path) reason="capacity-stable: sizes the pooled buffer once per stream geometry, never on the per-keyframe steady state"
            self.dc_levels.resize(n, 0);
        }
        // Pass 1 — integer only: SWAR varint parse, DPCM prediction and
        // the SWAR end-of-block scan. No float work mixes into this loop.
        let mut pr = ByteReader::new(payload);
        let mut prev_dc = 0i32;
        for slot in self.dc_levels.iter_mut() {
            let delta = pr.get_signed()?;
            let dc = i64::from(prev_dc)
                .checked_add(delta)
                .ok_or(CodecError::CorruptEntropy("dc out of range"))?;
            let dc = i32::try_from(dc)
                .map_err(|_| CodecError::CorruptEntropy("dc out of range"))?;
            prev_dc = dc;
            *slot = dc;
            pr.skip_past_zero_byte()?;
        }
        out.frame_index = index;
        out.blocks_w = self.grid.blocks_w;
        out.blocks_h = self.grid.blocks_h;
        if out.dc.len() != n {
            // vdsms-lint: allow(no-alloc-hot-path) reason="capacity-stable: sizes the pooled buffer once per stream geometry, never on the per-keyframe steady state"
            out.dc.resize(n, 0.0);
        }
        // Pass 2 — SoA dequant: one multiply per lane over contiguous
        // slices, which the compiler auto-vectorizes. `lvl as f32 * step`
        // is the exact expression the fused loop used, so outputs are
        // bit-identical.
        for (slot, &lvl) in out.dc.iter_mut().zip(&self.dc_levels) {
            *slot = lvl as f32 * step;
        }
        Ok(())
    }

    /// Scan forward from a damaged record for the next plausible record
    /// header. A candidate only counts if the record *after* it is also
    /// plausible or it ends the stream exactly (double-header validation
    /// — a lone 6-byte pattern inside entropy bytes is common; two
    /// chained ones are not). Accounts the damage in [`Self::health`] and
    /// leaves the cursor on the resync point, or at end-of-stream when no
    /// boundary survives (truncated tail). Allocation-free and panic-free:
    /// this runs on the hot ingestion path.
    fn resync(&mut self, damage_start: usize) {
        let buf = self.reader.buffer();
        // Each damaged span loses at least one record; records carry no
        // frame index, so the synthesized counter is advanced by exactly
        // one and stays monotone.
        self.health.frames_dropped += 1;
        self.frame_index += 1;
        // A plausible header must start with a kind byte of 0 or 1, so
        // the SWAR byte scan rules out every other offset 8 bytes at a
        // time; the full plausibility check only runs on candidates.
        let mut p = damage_start.saturating_add(1);
        while let Some(cand) = find_byte_le_one(buf, p) {
            if let Some(end) = plausible_record_end(buf, cand) {
                if end == buf.len() || plausible_record_end(buf, end).is_some() {
                    self.health.resyncs += 1;
                    self.health.bytes_skipped += (cand - damage_start) as u64;
                    self.reader.seek(cand);
                    return;
                }
            }
            p = cand + 1;
        }
        self.health.bytes_skipped += (buf.len() - damage_start) as u64;
        self.reader.seek(buf.len());
    }

    /// Decode the next key frame's DC coefficients, or `Ok(None)` at end of
    /// stream. Convenience wrapper over [`Self::next_dc_frame_into`] that
    /// allocates a fresh [`DcFrame`] per key frame; steady-state callers
    /// should hold a pooled frame and call the `_into` variant directly.
    pub fn next_dc_frame(&mut self) -> Result<Option<DcFrame>> {
        let mut out = DcFrame::empty();
        Ok(self.next_dc_frame_into(&mut out)?.then_some(out))
    }

    /// Decode all key frames' DC coefficients. The output is pre-sized by
    /// a prefix-only scan of the remaining records.
    pub fn decode_all(mut self) -> Result<Vec<DcFrame>> {
        let (_, intra) = scan_frame_counts(&self.reader);
        let mut out = Vec::with_capacity(intra);
        while let Some(d) = self.next_dc_frame()? {
            out.push(d);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderConfig};
    use vdsms_video::source::{ClipGenerator, SourceSpec};
    use vdsms_video::{Clip, Fps};

    fn test_clip(seed: u64, seconds: f64) -> Clip {
        let spec = SourceSpec {
            width: 48,
            height: 32,
            fps: Fps::integer(10),
            seed,
            min_scene_s: 1.0,
            max_scene_s: 2.0,
            motifs: None,
        };
        ClipGenerator::new(spec).clip(seconds)
    }

    #[test]
    fn full_decode_reconstructs_frames_closely() {
        let clip = test_clip(1, 2.0);
        let bytes = Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 85, motion_search: true });
        let frames = Decoder::new(&bytes).unwrap().decode_all().unwrap();
        assert_eq!(frames.len(), clip.len());
        for (orig, dec) in clip.frames().iter().zip(&frames) {
            let err = orig.mean_abs_diff(dec);
            assert!(err < 4.0, "reconstruction error too high: {err}");
        }
    }

    #[test]
    fn low_quality_reconstruction_is_worse_but_bounded() {
        let clip = test_clip(2, 1.0);
        let hi = Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 90, motion_search: true });
        let lo = Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 20, motion_search: true });
        let err_hi: f64 = Decoder::new(&hi)
            .unwrap()
            .decode_all()
            .unwrap()
            .iter()
            .zip(clip.frames())
            .map(|(d, o)| o.mean_abs_diff(d))
            .sum::<f64>();
        let err_lo: f64 = Decoder::new(&lo)
            .unwrap()
            .decode_all()
            .unwrap()
            .iter()
            .zip(clip.frames())
            .map(|(d, o)| o.mean_abs_diff(d))
            .sum::<f64>();
        assert!(err_lo > err_hi, "lower quality must lose more");
        assert!(err_lo / (clip.len() as f64) < 15.0, "even q20 must stay recognizable");
    }

    #[test]
    fn partial_decode_yields_one_dc_frame_per_key_frame() {
        let clip = test_clip(3, 3.0); // 30 frames
        let bytes = Encoder::encode_clip(&clip, EncoderConfig { gop: 10, quality: 75, motion_search: true });
        let dcs = PartialDecoder::new(&bytes).unwrap().decode_all().unwrap();
        assert_eq!(dcs.len(), 3); // frames 0, 10, 20
        assert_eq!(dcs[0].frame_index, 0);
        assert_eq!(dcs[1].frame_index, 10);
        assert_eq!(dcs[2].frame_index, 20);
    }

    #[test]
    fn partial_dc_matches_pixel_domain_block_means() {
        let clip = test_clip(4, 1.0);
        let bytes = Encoder::encode_clip(&clip, EncoderConfig { gop: 10, quality: 95, motion_search: true });
        let dcs = PartialDecoder::new(&bytes).unwrap().decode_all().unwrap();
        let d = &dcs[0];
        let f = &clip.frames()[0];
        // Interior blocks (no padding): DC/8 + 128 ≈ pixel-domain block mean.
        for by in 0..d.blocks_h - 1 {
            for bx in 0..d.blocks_w - 1 {
                let mean_pix = f.region_mean(bx * 8, by * 8, bx * 8 + 8, by * 8 + 8);
                let mean_dc = f64::from(d.block_mean(bx, by));
                assert!(
                    (mean_pix - mean_dc).abs() < 3.0,
                    "block ({bx},{by}): pixel mean {mean_pix} vs DC mean {mean_dc}"
                );
            }
        }
    }

    #[test]
    fn partial_dc_agrees_with_full_decode_dc() {
        let clip = test_clip(5, 2.0);
        let bytes = Encoder::encode_clip(&clip, EncoderConfig { gop: 4, quality: 60, motion_search: true });
        let dcs = PartialDecoder::new(&bytes).unwrap().decode_all().unwrap();
        let frames = Decoder::new(&bytes).unwrap().decode_all().unwrap();
        for d in &dcs {
            let f = &frames[d.frame_index as usize];
            for by in 0..d.blocks_h - 1 {
                for bx in 0..d.blocks_w - 1 {
                    let mean_pix = f.region_mean(bx * 8, by * 8, bx * 8 + 8, by * 8 + 8);
                    let mean_dc = f64::from(d.block_mean(bx, by));
                    assert!((mean_pix - mean_dc).abs() < 2.0);
                }
            }
        }
    }

    #[test]
    fn truncated_stream_errors_cleanly() {
        let clip = test_clip(6, 1.0);
        let bytes = Encoder::encode_clip(&clip, EncoderConfig::default());
        let cut = &bytes[..bytes.len() / 2];
        let mut dec = Decoder::new(cut).unwrap();
        let result = loop {
            match dec.next_frame() {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        assert!(result.is_err(), "truncation must surface as an error");
    }

    #[test]
    fn pooled_dc_decode_matches_allocating_path_and_reuses_capacity() {
        let clip = test_clip(7, 4.0);
        let bytes = Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 70, motion_search: true });
        let expected = PartialDecoder::new(&bytes).unwrap().decode_all().unwrap();

        let mut dec = PartialDecoder::new(&bytes).unwrap();
        let mut frame = DcFrame::empty();
        let mut got = Vec::new();
        let mut cap_after_first = 0usize;
        while dec.next_dc_frame_into(&mut frame).unwrap() {
            if got.is_empty() {
                cap_after_first = frame.dc.capacity();
            } else {
                assert_eq!(frame.dc.capacity(), cap_after_first, "pooled buffer must not regrow");
            }
            got.push(frame.clone());
        }
        assert_eq!(got, expected, "pooled decode must be bit-identical");
        assert!(!dec.next_dc_frame_into(&mut frame).unwrap(), "stream exhausted");
    }

    #[test]
    fn garbage_input_is_rejected() {
        assert!(Decoder::new(b"not a stream").is_err());
        assert!(PartialDecoder::new(&[]).is_err());
    }

    /// Decode every key frame with recovery enabled, returning the frames
    /// and the final health counters.
    fn recover_all(bytes: &[u8]) -> (Vec<DcFrame>, IngestHealth) {
        let mut dec = PartialDecoder::new_with_recovery(bytes, true).unwrap();
        let mut frame = DcFrame::empty();
        let mut out = Vec::new();
        while dec.next_dc_frame_into(&mut frame).unwrap() {
            out.push(frame.clone());
        }
        (out, dec.health())
    }

    #[test]
    fn recovery_on_clean_stream_is_bit_identical_to_strict() {
        let clip = test_clip(8, 3.0);
        let bytes = Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 80, motion_search: true });
        let strict = PartialDecoder::new(&bytes).unwrap().decode_all().unwrap();
        let (recovered, health) = recover_all(&bytes);
        assert_eq!(recovered, strict);
        assert!(health.is_clean(), "{health:?}");
    }

    #[test]
    fn recovery_resyncs_past_a_corrupted_record() {
        let clip = test_clip(9, 4.0); // 40 frames, gop 5 → 8 key frames
        let mut bytes =
            Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 80, motion_search: true });
        let strict = PartialDecoder::new(&bytes).unwrap().decode_all().unwrap();
        assert_eq!(strict.len(), 8);

        // Find the third record (second key frame region) and wreck its
        // header so strict decode dies there.
        let mut r = ByteReader::new(&bytes);
        StreamHeader::read(&mut r).unwrap();
        let rec = FrameRecord::read(&mut r).unwrap(); // frame 0 (I)
        r.skip(rec.payload_len as usize).unwrap();
        let second = r.position();
        bytes[second] = 0xee; // invalid frame type byte

        let mut strict_dec = PartialDecoder::new(&bytes).unwrap();
        let mut f = DcFrame::empty();
        assert!(strict_dec.next_dc_frame_into(&mut f).unwrap());
        let err = loop {
            match strict_dec.next_dc_frame_into(&mut f) {
                Ok(true) => continue,
                Ok(false) => panic!("strict decode must error on the wrecked record"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, CodecError::InvalidField(_) | CodecError::CorruptEntropy(_)));

        let (recovered, health) = recover_all(&bytes);
        // The first key frame decodes before the damage; later key frames
        // are recovered after resync.
        assert_eq!(recovered[0], strict[0]);
        assert!(recovered.len() >= strict.len() - 2, "{} of 8 recovered", recovered.len());
        assert!(health.resyncs >= 1, "{health:?}");
        assert!(health.frames_dropped >= 1, "{health:?}");
        assert!(health.bytes_skipped >= 1, "{health:?}");
        // Key frames from intact records are bit-identical to the clean
        // decode of the same records.
        for rf in &recovered {
            if let Some(sf) = strict.iter().find(|s| s.frame_index == rf.frame_index) {
                if rf.frame_index > 10 {
                    assert_eq!(rf, sf, "frame {}", rf.frame_index);
                }
            }
        }
    }

    #[test]
    fn recovery_survives_truncation() {
        let clip = test_clip(10, 2.0);
        let bytes = Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 80, motion_search: true });
        let cut = &bytes[..bytes.len() - bytes.len() / 3];
        let (recovered, health) = recover_all(cut);
        assert!(!recovered.is_empty());
        assert!(health.frames_dropped >= 1, "{health:?}");
    }

    #[test]
    fn recovery_never_diverges_on_arbitrary_suffixes() {
        // Whatever junk follows a valid header must terminate cleanly.
        let clip = test_clip(11, 1.0);
        let bytes = Encoder::encode_clip(&clip, EncoderConfig::default());
        for cut in [8, 9, 10, 15] {
            let mut junk = bytes[..cut.min(bytes.len())].to_vec();
            junk.extend(std::iter::repeat_n(0xa5u8, 64));
            if let Ok(mut dec) = PartialDecoder::new_with_recovery(&junk, true) {
                let mut f = DcFrame::empty();
                let mut iters = 0usize;
                while dec.next_dc_frame_into(&mut f).unwrap() {
                    iters += 1;
                    assert!(iters <= junk.len(), "unbounded recovery loop");
                }
            }
        }
    }
}
