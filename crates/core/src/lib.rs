//! # vdsms-core — the continuous copy-detection engine
//!
//! This crate implements the paper's primary contribution (Sections III–V):
//! a streaming engine that monitors many continuous query videos against a
//! video stream and reports content-based copies, robust to temporal
//! re-ordering, with CPU and memory costs optimized by three techniques:
//!
//! 1. **Bit-vector signatures** ([`bitsig`], Definition 3 / Lemma 1): each
//!    candidate-vs-query sketch relation is encoded in `2K` bits such that
//!    sketch combination becomes a bitwise OR and similarity becomes two
//!    popcounts — losslessly.
//! 2. **Pruning** ([`bitsig::BitSig::violates_lemma2`], Lemma 2): once a
//!    candidate has more than `K(1−δ)` min-hash values *smaller* than the
//!    query's, no extension of it can ever match, so it (and its
//!    combination chain) is dropped.
//! 3. **The Hash–Query index** ([`hq`], Section V-C, Figs. 4–5): query
//!    sketches are organized in a `K × m` array of sorted rows with
//!    up/down links, so a basic window is compared only against the small
//!    set of queries it shares min-hash values with.
//!
//! The engine ([`engine::Detector`]) supports all four method variants the
//! paper evaluates — Sketch/Bit representation × with/without index — and
//! both candidate combination orders (Sequential and Geometric, Section
//! IV-A, Fig. 2), with full operation counters ([`stats`]) so the paper's
//! cost experiments can be reproduced exactly.

#![forbid(unsafe_code)]

pub mod bitsig;
pub mod config;
pub mod detection;
pub mod engine;
pub mod error;
pub mod fleet;
pub mod geo_store;
pub mod hq;
pub mod parallel_fleet;
pub mod persist;
pub mod query;
pub mod seq_store;
pub mod stats;
pub mod sync;
pub mod window;

pub use bitsig::BitSig;
pub use config::{DetectorConfig, DetectorVariant, Order, Representation};
pub use detection::Detection;
pub use engine::Detector;
pub use error::FleetError;
pub use fleet::{Fleet, StreamDetection, StreamId};
pub use hq::HqIndex;
pub use parallel_fleet::{AnyFleet, ParallelFleet};
pub use persist::{load_queries, save_queries, PersistError};
pub use query::{Query, QueryId, QuerySet};
pub use stats::Stats;
