//! The gate itself, exercised both ways: the real workspace must be
//! violation-free under `lint.toml` (what `ci.sh` enforces), and a
//! seeded violation must turn the report non-clean (so the CI step
//! demonstrably fails when someone reintroduces a forbidden pattern).

use std::path::{Path, PathBuf};
use vdsms_lint::{find_workspace_root, lint_workspace_with_default_config};

fn workspace_root() -> PathBuf {
    let start = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(&start).expect("crates/lint lives inside the workspace")
}

#[test]
fn real_workspace_is_violation_free() {
    let report = lint_workspace_with_default_config(&workspace_root()).expect("lint run");
    assert!(
        report.is_clean(),
        "the workspace must pass its own gate:\n{}",
        report.render()
    );
    // Sanity: the run actually covered the workspace, it didn't silently
    // scan an empty directory.
    assert!(report.files_scanned > 50, "only {} files scanned", report.files_scanned);
    assert!(
        report.suppressed >= 3,
        "the known inline allows (spawn, Drop, decode timing) should be counted, got {}",
        report.suppressed
    );
}

/// Build a minimal fake workspace in a temp dir: `lint.toml`, a root
/// package, and one source file with `violations` seeded in.
fn seed_workspace(dir: &Path, source: &str) {
    std::fs::create_dir_all(dir.join("src")).unwrap();
    std::fs::write(
        dir.join("lint.toml"),
        "[default]\nno-panic-hot-path = true\ndeterministic-iteration = true\n",
    )
    .unwrap();
    std::fs::write(dir.join("Cargo.toml"), "[package]\nname = \"seeded\"\n").unwrap();
    std::fs::write(dir.join("src/lib.rs"), source).unwrap();
}

#[test]
fn seeded_violation_fails_the_gate() {
    let dir = std::env::temp_dir().join(format!("vdsms-lint-seeded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A clean file passes…
    seed_workspace(&dir, "#![forbid(unsafe_code)]\npub fn ok(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n");
    let clean = lint_workspace_with_default_config(&dir).expect("lint run");
    assert!(clean.is_clean(), "{}", clean.render());

    // …and reintroducing a hot-path unwrap turns the report non-clean,
    // which is exactly the condition ci.sh's exit code keys off.
    seed_workspace(
        &dir,
        "#![forbid(unsafe_code)]\npub fn bad(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let dirty = lint_workspace_with_default_config(&dir).expect("lint run");
    assert!(!dirty.is_clean());
    assert_eq!(dirty.diagnostics.len(), 1);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "no-panic-hot-path");
    assert!(d.file.ends_with("src/lib.rs"), "workspace-relative path: {}", d.file);
    assert_eq!(d.line, 2);

    // JSON output is machine-checkable: it names the rule and the file.
    let json = dirty.to_json();
    assert!(json.contains("\"no-panic-hot-path\""), "{json}");
    assert!(json.contains("src/lib.rs"), "{json}");

    let _ = std::fs::remove_dir_all(&dir);
}
