// shared-state-discipline negative fixture: every look-alike here is
// properly synchronized (or never crosses a spawn) and must be silent.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::thread;

// `&'static mut` is a *reference* with a lifetime token, not a
// `static mut` item — the token half must not fire on it.
pub fn scale(buf: &'static mut [u64]) {
    buf.sort();
}

// Arc<Mutex<…>> across a spawn: the disciplined shape.
pub fn synced() {
    let state = Arc::new(Mutex::new(0u64));
    let snd = Arc::clone(&state);
    thread::spawn(move || {
        snd.lock();
    });
    state.lock();
}

// Arc<Atomic…> across a spawn: also fine.
pub fn atomic_flag() {
    let flag = Arc::new(AtomicU64::new(0));
    let snd = flag.clone();
    thread::spawn(move || {
        snd.fetch_add(1, Ordering::Relaxed);
    });
}

// Hazardous kinds that never cross a spawn boundary are fine.
pub fn local_only() -> u64 {
    let cell = Arc::new(RefCell::new(3u64));
    let rc = Rc::new(4u64);
    *cell.borrow() + *rc
}

// A closure-local binding shadows the outer hazard: the closure touches
// only its own `Rc`, so nothing is captured.
pub fn shadowed() {
    let handle = Rc::new(1u64);
    thread::spawn(move || {
        let handle = Rc::new(2u64);
        drop(handle);
    });
    drop(handle);
}
