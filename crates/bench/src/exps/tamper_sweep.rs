//! Tamper-strength sweep (extension beyond the paper): how much editing
//! can the fingerprint pipeline absorb before copies stop clearing the
//! δ = 0.7 membership threshold?
//!
//! For each strength level, a full edit suite (gain/offset + noise +
//! re-ordering + re-compression) is applied to a subset of the clip
//! library; we report the self-match rate (recall) and the mean Jaccard
//! similarity between each original and its edited copy.

use crate::table::f3;
use crate::{Ctx, Table};
use std::collections::HashSet;
use vdsms_codec::{Decoder, Encoder, EncoderConfig};
use vdsms_features::FeatureExtractor;
use vdsms_video::{Clip, Edit};

/// δ for the membership test.
const DELTA: f64 = 0.7;
/// Clips sampled from the library (edit pipelines are expensive).
const SAMPLE: usize = 20;

/// One strength level of the tamper suite.
struct Strength {
    name: &'static str,
    gain: f64,
    offset: f64,
    noise_sigma: f64,
    reorder_segments: usize,
    recompress_quality: u8,
}

const LEVELS: &[Strength] = &[
    Strength { name: "none", gain: 1.0, offset: 0.0, noise_sigma: 0.0, reorder_segments: 1, recompress_quality: 80 },
    Strength { name: "light", gain: 0.9, offset: -4.0, noise_sigma: 1.0, reorder_segments: 3, recompress_quality: 75 },
    Strength { name: "paper (VS2-like)", gain: 0.7, offset: -8.0, noise_sigma: 2.5, reorder_segments: 5, recompress_quality: 65 },
    Strength { name: "heavy", gain: 0.55, offset: -12.0, noise_sigma: 4.0, reorder_segments: 9, recompress_quality: 45 },
    Strength { name: "extreme", gain: 0.4, offset: -20.0, noise_sigma: 7.0, reorder_segments: 15, recompress_quality: 25 },
];

fn apply(clip: &Clip, s: &Strength, gop: u32, seed: u64) -> Clip {
    let mut edited = Edit::GainOffset { gain: s.gain, offset: s.offset }.apply(clip);
    if s.noise_sigma > 0.0 {
        edited = Edit::Noise { sigma: s.noise_sigma, seed }.apply(&edited);
    }
    if s.reorder_segments > 1 {
        edited = Edit::SegmentReorder {
            segments: s.reorder_segments.min(edited.len() / 2).max(1),
            seed: seed ^ 1,
        }
        .apply(&edited);
    }
    // Re-compression round trip.
    let bytes =
        Encoder::encode_clip(&edited, EncoderConfig { gop, quality: s.recompress_quality, motion_search: true });
    let frames = Decoder::new(&bytes).expect("own encoding").decode_all().expect("own encoding");
    Clip::new(frames, edited.fps())
}

/// Run the sweep.
pub fn run(ctx: &mut Ctx) -> Table {
    let fc = *ctx.features();
    let extractor = FeatureExtractor::new(fc);
    let gop = ctx.spec().gop;
    let n = SAMPLE.min(ctx.library().len());

    let mut table = Table::new(
        "Extension — tamper-strength sweep (membership test, δ = 0.7)",
        &["strength", "recall", "mean Jaccard"],
    );
    table.note(format!("{n} clips; gain/offset + noise + re-order + re-compress at each level"));

    // Original cell sets.
    let originals: Vec<(Clip, HashSet<u64>)> = (0..n as u32)
        .map(|id| {
            let clip = ctx.library().original(id);
            let set: HashSet<u64> =
                extractor.fingerprint_sequence(&ctx.library().dc_frames(&clip)).into_iter().collect();
            (clip, set)
        })
        .collect();

    for level in LEVELS {
        let mut recalled = 0usize;
        let mut jac_total = 0.0f64;
        for (id, (clip, original_set)) in originals.iter().enumerate() {
            let edited = apply(clip, level, gop, 0xabc0 + id as u64);
            let edited_set: HashSet<u64> = extractor
                .fingerprint_sequence(&ctx.library().dc_frames(&edited))
                .into_iter()
                .collect();
            let inter = original_set.intersection(&edited_set).count();
            let union = original_set.len() + edited_set.len() - inter;
            let j = if union == 0 { 0.0 } else { inter as f64 / union as f64 };
            jac_total += j;
            if j >= DELTA {
                recalled += 1;
            }
        }
        table.push(vec![
            level.name.to_string(),
            f3(recalled as f64 / n as f64),
            f3(jac_total / n as f64),
        ]);
    }
    table
}
