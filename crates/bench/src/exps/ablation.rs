//! Ablation experiments (beyond the paper's figures, supporting its
//! design arguments):
//!
//! * **Partition ablation** — Section III-A argues grid-only partitioning
//!   yields false negatives under coefficient jitter while pyramid-only
//!   (just `2d` cells) yields false positives; the combination wins. We
//!   measure all three with the Table II membership test.
//! * **Pruning ablation** — Lemma 2 is the paper's memory/CPU lever; we
//!   measure CPU time and live-signature population with pruning
//!   disabled.

use crate::table::f3;
use crate::{Ctx, Scale, Table};
use std::collections::HashSet;
use vdsms_codec::DcFrame;
use vdsms_core::{DetectorConfig, Order, Representation};
use vdsms_features::{normalize, region_averages, select_dims, FeatureConfig, GridPyramid};
use vdsms_workload::StreamKind;

const DELTA: f64 = 0.7;

/// Which cell-id construction to use.
#[derive(Clone, Copy)]
enum Partition {
    GridOnly,
    PyramidOnly,
    GridPyramid,
}

fn cell_set(dcs: &[DcFrame], fc: &FeatureConfig, which: Partition) -> HashSet<u64> {
    let gp = GridPyramid::new(fc.d, fc.u);
    dcs.iter()
        .map(|dc| {
            let avgs = region_averages(dc, fc.rows, fc.cols);
            let f = select_dims(&normalize(&avgs), fc.d);
            match which {
                Partition::GridOnly => gp.grid_only_id(&f),
                Partition::PyramidOnly => gp.pyramid_only_id(&f),
                Partition::GridPyramid => gp.cell_id(&f),
            }
        })
        .collect()
}

fn jaccard(a: &HashSet<u64>, b: &HashSet<u64>) -> f64 {
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Partition ablation via the Table II membership test.
pub fn run_partition(ctx: &mut Ctx) -> Table {
    let fc = *ctx.features();
    let (originals, edited) = ctx.clip_dc_frames().clone();
    let m = originals.len();

    let mut table = Table::new(
        "Ablation — space partition: grid-only vs pyramid-only vs grid-pyramid",
        &["partition", "cells", "precision", "recall"],
    );
    table.note(format!("membership test, δ = {DELTA}, d = {}, u = {}, {m} clip pairs", fc.d, fc.u));

    // Grid-only at the configured u is coarser than grid-pyramid (u^d vs
    // 2d·u^d cells); to test the paper's claim fairly we also include a
    // grid-only variant with u bumped until its cell count matches or
    // exceeds the grid-pyramid's (matched granularity).
    let gp_cells = 2 * fc.d as u64 * (fc.u as u64).pow(fc.d as u32);
    let mut u_matched = fc.u;
    while (u64::from(u_matched)).pow(fc.d as u32) < gp_cells {
        u_matched += 1;
    }

    let variants: Vec<(String, Partition, FeatureConfig, u64)> = vec![
        (
            format!("grid-only u={}", fc.u),
            Partition::GridOnly,
            fc,
            (fc.u as u64).pow(fc.d as u32),
        ),
        (
            format!("grid-only u={u_matched} (matched)"),
            Partition::GridOnly,
            FeatureConfig { u: u_matched, ..fc },
            u64::from(u_matched).pow(fc.d as u32),
        ),
        ("pyramid-only".to_string(), Partition::PyramidOnly, fc, 2 * fc.d as u64),
        ("grid-pyramid".to_string(), Partition::GridPyramid, fc, gp_cells),
    ];

    for (name, which, vfc, cells) in variants {
        let a_sets: Vec<HashSet<u64>> =
            originals.iter().map(|d| cell_set(d, &vfc, which)).collect();
        let b_sets: Vec<HashSet<u64>> = edited.iter().map(|d| cell_set(d, &vfc, which)).collect();
        let mut retrieved = 0usize;
        let mut correct = 0usize;
        let mut recalled = 0usize;
        for (i, a) in a_sets.iter().enumerate() {
            let mut hit = false;
            for (j, b) in b_sets.iter().enumerate() {
                if jaccard(a, b) >= DELTA {
                    retrieved += 1;
                    if i == j {
                        correct += 1;
                        hit = true;
                    }
                }
            }
            if hit {
                recalled += 1;
            }
        }
        let precision = if retrieved == 0 { 1.0 } else { correct as f64 / retrieved as f64 };
        table.push(vec![name, cells.to_string(), f3(precision), f3(recalled as f64 / m as f64)]);
    }
    table
}

/// Pruning ablation: CPU + memory with Lemma 2 on/off.
pub fn run_pruning(ctx: &mut Ctx, _scale: Scale) -> Table {
    let m = ctx.library().len();
    let mut table = Table::new(
        "Ablation — Lemma-2 pruning on/off (VS2, BitIndex/Seq)",
        &["pruning", "CPU (s)", "avg signatures", "peak signatures", "precision", "recall"],
    );
    table.note(format!("m = {m} queries, K = 800, δ = 0.7, w = 5 s"));
    for enable_pruning in [true, false] {
        let cfg = DetectorConfig {
            window_keyframes: ctx.spec().window_keyframes(5.0),
            order: Order::Sequential,
            representation: Representation::Bit,
            use_index: true,
            enable_pruning,
            ..Default::default()
        };
        let res = ctx.run_engine(StreamKind::Vs2, cfg, m);
        table.push(vec![
            if enable_pruning { "on" } else { "off" }.to_string(),
            f3(res.engine_seconds),
            f3(res.stats.avg_signatures()),
            res.stats.live_signature_peak.to_string(),
            f3(res.pr.precision),
            f3(res.pr.recall),
        ]);
    }
    table
}
