//! Typed errors for fleet operations.
//!
//! The paper's setting is *continuous* monitoring: the detector runs
//! indefinitely against live streams, so an operational mistake (feeding
//! an unknown stream id, a worker thread dying) must surface as a value
//! the caller can handle — not as a panic that takes the whole monitoring
//! process down. Every fleet entry point that can fail returns
//! [`FleetError`]; the `vdsms-lint` `no-panic-hot-path` rule enforces
//! that the hot path stays panic-free.

use crate::fleet::StreamId;

/// An error from a [`crate::Fleet`] / [`crate::ParallelFleet`] operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// A key frame or command referenced a stream id that is not
    /// currently monitored.
    StreamNotMonitored(StreamId),
    /// [`crate::Fleet::add_stream`] was called with an id that is already
    /// monitored.
    StreamAlreadyMonitored(StreamId),
    /// A shard worker thread of a [`crate::ParallelFleet`] terminated
    /// (it panicked or its channel closed); the fleet can no longer
    /// guarantee complete detection coverage and should be rebuilt.
    ShardDied {
        /// Index of the dead shard.
        shard: usize,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::StreamNotMonitored(id) => {
                write!(f, "stream {id} is not monitored")
            }
            FleetError::StreamAlreadyMonitored(id) => {
                write!(f, "stream {id} is already monitored")
            }
            FleetError::ShardDied { shard } => {
                write!(f, "fleet shard {shard} worker died")
            }
        }
    }
}

impl std::error::Error for FleetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_offender() {
        assert_eq!(
            FleetError::StreamNotMonitored(7).to_string(),
            "stream 7 is not monitored"
        );
        assert_eq!(
            FleetError::StreamAlreadyMonitored(3).to_string(),
            "stream 3 is already monitored"
        );
        assert_eq!(
            FleetError::ShardDied { shard: 2 }.to_string(),
            "fleet shard 2 worker died"
        );
    }
}
