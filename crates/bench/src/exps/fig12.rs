//! Figure 12 — CPU time vs the basic window size `w`, comparing the
//! proposed Bit method against the Seq (Hampapur) and Warp (Chiu)
//! baselines on VS2.
//!
//! Expected shape: Bit is the fastest at every window size; Warp is the
//! slowest (its distance is `O(n·r)` per evaluation); larger windows mean
//! fewer evaluations for everyone.

use crate::table::f3;
use crate::{Ctx, Scale, Table};
use vdsms_baselines::BaselineKind;
use vdsms_core::{DetectorConfig, Order, Representation};
use vdsms_workload::StreamKind;

/// Warp band half-width in key frames, matching the paper's mid-range r.
const WARP_R: usize = 4;

/// Baseline distance threshold used for the timing runs (timing is
/// threshold-insensitive; accuracy sweeps live in Figs. 14–15).
const THETA: f64 = 0.4;

/// Run the sweep.
pub fn run(ctx: &mut Ctx, scale: Scale) -> Table {
    let m = ctx.library().len();
    let decode = ctx.decode_seconds(StreamKind::Vs2);
    let mut table = Table::new(
        "Figure 12 — CPU time (s) vs basic window w: Bit vs Seq vs Warp (VS2)",
        &["w (s)", "Bit", "Seq", "Warp"],
    );
    table.note(format!(
        "m = {m} queries, K = 800, δ = 0.7, warp r = {WARP_R} key frames; times include {decode:.2} s of partial decoding"
    ));
    for w in scale.w_sweep() {
        let cfg = DetectorConfig {
            window_keyframes: ctx.spec().window_keyframes(w),
            order: Order::Sequential,
            representation: Representation::Bit,
            use_index: true,
            ..Default::default()
        };
        let bit = ctx.run_engine(StreamKind::Vs2, cfg, m);
        let (_, seq_secs) = ctx.run_baseline(StreamKind::Vs2, BaselineKind::Seq, THETA, w, m);
        let (_, warp_secs) =
            ctx.run_baseline(StreamKind::Vs2, BaselineKind::Warp { r: WARP_R }, THETA, w, m);
        table.push(vec![
            format!("{w}"),
            f3(bit.engine_seconds + decode),
            f3(seq_secs + decode),
            f3(warp_secs + decode),
        ]);
    }
    table
}
