//! A clip: an in-memory sequence of frames with a frame rate.
//!
//! Clips are the unit the workload generator manipulates: short videos are
//! generated as clips, edited as clips, and finally concatenated into the
//! long evaluation stream before encoding.

use crate::{Fps, Frame};

/// An in-memory frame sequence at a fixed frame rate.
#[derive(Debug, Clone)]
pub struct Clip {
    frames: Vec<Frame>,
    fps: Fps,
}

impl Clip {
    /// Create a clip from frames.
    ///
    /// # Panics
    /// Panics if `frames` is empty or the frames do not all share one
    /// resolution.
    pub fn new(frames: Vec<Frame>, fps: Fps) -> Clip {
        assert!(!frames.is_empty(), "a clip must contain at least one frame");
        let (w, h) = (frames[0].width(), frames[0].height());
        assert!(
            frames.iter().all(|f| f.width() == w && f.height() == h),
            "all frames in a clip must share one resolution"
        );
        Clip { frames, fps }
    }

    /// The clip's frames.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Consume the clip, returning its frames.
    pub fn into_frames(self) -> Vec<Frame> {
        self.frames
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the clip has zero frames (never true for a valid clip).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frame rate.
    pub fn fps(&self) -> Fps {
        self.fps
    }

    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        self.fps.seconds_of(self.frames.len())
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.frames[0].width()
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.frames[0].height()
    }

    /// Reinterpret the clip's frames on a new timeline (same frames,
    /// different nominal rate). This is what happens when a broadcaster
    /// airs a frame-rate-converted copy inside its own constant-rate
    /// stream: the frames play at the stream's rate, tempo-scaling the
    /// content — the distortion the engine's λ bound exists for.
    pub fn retimed(&self, fps: Fps) -> Clip {
        Clip { frames: self.frames.clone(), fps }
    }

    /// Append another clip's frames (must match resolution and fps).
    pub fn append(&mut self, mut other: Clip) {
        assert_eq!(self.fps, other.fps, "fps mismatch on append");
        assert_eq!(self.width(), other.width(), "width mismatch on append");
        assert_eq!(self.height(), other.height(), "height mismatch on append");
        self.frames.append(&mut other.frames);
    }

    /// Extract the sub-clip `[start, start + len)`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or empty.
    pub fn slice(&self, start: usize, len: usize) -> Clip {
        assert!(len > 0 && start + len <= self.frames.len(), "slice out of bounds");
        Clip { frames: self.frames[start..start + len].to_vec(), fps: self.fps }
    }

    /// Split the clip into `n` segments of near-equal length, returned in
    /// order. Used by the segment re-ordering tamper edit.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > len()`.
    pub fn split_segments(&self, n: usize) -> Vec<Clip> {
        assert!(n > 0 && n <= self.frames.len(), "cannot split {} frames into {n}", self.len());
        let mut out = Vec::with_capacity(n);
        let base = self.frames.len() / n;
        let extra = self.frames.len() % n;
        let mut start = 0;
        for i in 0..n {
            let len = base + usize::from(i < extra);
            out.push(self.slice(start, len));
            start += len;
        }
        out
    }

    /// Concatenate segments back into one clip (inverse of
    /// [`Clip::split_segments`] when applied in order).
    ///
    /// # Panics
    /// Panics if `segments` is empty or inconsistent.
    pub fn concat(segments: Vec<Clip>) -> Clip {
        let mut iter = segments.into_iter();
        let mut first = iter.next().expect("concat of zero segments");
        for seg in iter {
            first.append(seg);
        }
        first
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clip_of(n: usize) -> Clip {
        let frames = (0..n).map(|i| Frame::filled(8, 8, i as u8)).collect();
        Clip::new(frames, Fps::integer(10))
    }

    #[test]
    fn duration_uses_fps() {
        let c = clip_of(25);
        assert!((c.duration() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn slice_extracts_expected_frames() {
        let c = clip_of(10);
        let s = c.slice(3, 4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.frames()[0].get(0, 0), 3);
        assert_eq!(s.frames()[3].get(0, 0), 6);
    }

    #[test]
    fn split_segments_covers_all_frames_in_order() {
        let c = clip_of(11);
        let segs = c.split_segments(4);
        assert_eq!(segs.len(), 4);
        let lens: Vec<usize> = segs.iter().map(Clip::len).collect();
        assert_eq!(lens.iter().sum::<usize>(), 11);
        // Near-equal: lengths differ by at most one.
        assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
        let rejoined = Clip::concat(segs);
        assert_eq!(rejoined.frames(), c.frames());
    }

    #[test]
    fn append_concatenates() {
        let mut a = clip_of(3);
        a.append(clip_of(2));
        assert_eq!(a.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn empty_clip_rejected() {
        let _ = Clip::new(vec![], Fps::integer(10));
    }

    #[test]
    #[should_panic(expected = "one resolution")]
    fn mixed_resolution_rejected() {
        let _ = Clip::new(vec![Frame::filled(8, 8, 0), Frame::filled(4, 4, 0)], Fps::integer(10));
    }
}
