//! Baseline distance primitives: the aligned Seq measure vs banded DTW —
//! why Warp is the slowest line of Figure 12.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vdsms_baselines::{banded_dtw, seq_distance};

fn seq_of(n: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..5)
                .map(|d| (((i as u64 * 31 + d * 17 + seed) % 100) as f32) / 100.0)
                .collect()
        })
        .collect()
}

fn bench_distances(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline_distance");
    g.sample_size(30);
    for n in [60usize, 240, 600] {
        let q = seq_of(n, 1);
        let p = seq_of(n, 2);
        g.bench_with_input(BenchmarkId::new("seq_aligned", n), &n, |bench, _| {
            bench.iter(|| seq_distance(black_box(&q), black_box(&p)));
        });
        for r in [4usize, 16] {
            g.bench_with_input(
                BenchmarkId::new(format!("dtw_r{r}"), n),
                &n,
                |bench, _| {
                    bench.iter(|| banded_dtw(black_box(&q), black_box(&p), r));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
