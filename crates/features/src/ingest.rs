//! Fused bytes→fingerprint streaming ingestion.
//!
//! [`FingerprintStream`] is the one ingestion front-end: it pulls key
//! frames straight out of a compressed bitstream with the pooled partial
//! decoder ([`vdsms_codec::PartialDecoder::next_dc_frame_into`]) and maps
//! each through the precomputed-plan fingerprint path
//! ([`FeatureExtractor::fingerprint_into`]), yielding
//! `(frame_index, cell_id)` pairs with **zero heap allocations per key
//! frame** in the steady state. The CLI, the fleet feeders and the
//! benches all ingest through this adapter, so the compressed-domain
//! cost story is measured on the path production code actually runs.
//!
//! Output is bit-identical to the unfused
//! `PartialDecoder::decode_all` → `FeatureExtractor::fingerprint_sequence`
//! composition — same cell ids, same frame indices — which the property
//! tests in `tests/` assert byte for byte.

use crate::extract::{FeatureExtractor, FingerprintScratch};
use crate::CellId;
use vdsms_codec::{DcFrame, IngestHealth, PartialDecoder, Result, StreamHeader};

/// Streaming adapter yielding `(frame_index, cell_id)` directly from
/// bitstream bytes. Holds all pooled state (DC frame, region plan,
/// feature buffers); steady-state pulls are allocation-free.
#[derive(Debug)]
pub struct FingerprintStream<'a> {
    decoder: PartialDecoder<'a>,
    extractor: FeatureExtractor,
    frame: DcFrame,
    scratch: FingerprintScratch,
    /// Whether the underlying decoder runs in corruption-recovery mode;
    /// preserved across [`Self::reopen`].
    recover: bool,
    /// Health carried over from segments consumed before a `reopen` —
    /// degradation accounting survives segment chaining.
    carried_health: IngestHealth,
}

impl<'a> FingerprintStream<'a> {
    /// Open a bitstream for fused ingestion, parsing its header.
    pub fn new(bytes: &'a [u8], extractor: FeatureExtractor) -> Result<FingerprintStream<'a>> {
        FingerprintStream::new_with_recovery(bytes, extractor, false)
    }

    /// Open a bitstream in strict or corruption-recovery mode (see
    /// [`PartialDecoder::new_with_recovery`]). In recovery mode,
    /// mid-record corruption is skipped and accounted in
    /// [`Self::health`] instead of ending the stream with an error.
    pub fn new_with_recovery(
        bytes: &'a [u8],
        extractor: FeatureExtractor,
        recover: bool,
    ) -> Result<FingerprintStream<'a>> {
        let scratch = extractor.scratch();
        Ok(FingerprintStream {
            decoder: PartialDecoder::new_with_recovery(bytes, recover)?,
            extractor,
            frame: DcFrame::empty(),
            scratch,
            recover,
            carried_health: IngestHealth::default(),
        })
    }

    /// Degradation counters accumulated over every segment this stream
    /// has ingested (all zero in strict mode and on clean streams).
    pub fn health(&self) -> IngestHealth {
        let mut h = self.carried_health;
        h.merge(&self.decoder.health());
        h
    }

    /// The stream's header.
    pub fn header(&self) -> &StreamHeader {
        self.decoder.header()
    }

    /// Key frames per second implied by the stream's fps and GOP length.
    pub fn key_frame_rate(&self) -> f64 {
        self.decoder.key_frame_rate()
    }

    /// The extractor this stream fingerprints with.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// Restart ingestion on a (possibly different) bitstream while
    /// keeping every pooled buffer — the allocation-free way to chain
    /// segments or re-ingest a stream.
    pub fn reopen(&mut self, bytes: &'a [u8]) -> Result<()> {
        self.carried_health.merge(&self.decoder.health());
        self.decoder.reopen(bytes, self.recover)
    }

    /// Decode and fingerprint the next key frame, or `Ok(None)` at end of
    /// stream. P-frames are skipped in O(1); the returned index counts
    /// them, so detections report true stream positions.
    // vdsms-lint: entry
    pub fn next_fingerprint(&mut self) -> Result<Option<(u64, CellId)>> {
        if self.decoder.next_dc_frame_into(&mut self.frame)? {
            let cell = self.extractor.fingerprint_into(&mut self.scratch, &self.frame);
            Ok(Some((self.frame.frame_index, cell)))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::FeatureConfig;
    use vdsms_codec::{Encoder, EncoderConfig};
    use vdsms_video::source::{ClipGenerator, SourceSpec};
    use vdsms_video::{Clip, Fps};

    fn test_clip(seed: u64, seconds: f64) -> Clip {
        let spec = SourceSpec {
            width: 176,
            height: 120,
            fps: Fps::integer(10),
            seed,
            min_scene_s: 1.0,
            max_scene_s: 2.0,
            motifs: None,
        };
        ClipGenerator::new(spec).clip(seconds)
    }

    #[test]
    fn fused_stream_matches_unfused_composition() {
        let clip = test_clip(21, 5.0);
        let bytes =
            Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 80, motion_search: true });
        let ex = FeatureExtractor::new(FeatureConfig::default());

        let dcs = PartialDecoder::new(&bytes).unwrap().decode_all().unwrap();
        let expected: Vec<(u64, CellId)> = dcs
            .iter()
            .map(|d| d.frame_index)
            .zip(ex.fingerprint_sequence(&dcs))
            .collect();

        let mut fs = FingerprintStream::new(&bytes, ex).unwrap();
        let mut got = Vec::new();
        while let Some(pair) = fs.next_fingerprint().unwrap() {
            got.push(pair);
        }
        assert_eq!(got, expected, "fused path must be bit-identical");
        assert_eq!(fs.next_fingerprint().unwrap(), None, "exhausted stream stays exhausted");
    }

    #[test]
    fn reopen_replays_the_same_fingerprints() {
        let clip = test_clip(22, 3.0);
        let bytes =
            Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 70, motion_search: true });
        let ex = FeatureExtractor::new(FeatureConfig::default());
        let mut fs = FingerprintStream::new(&bytes, ex).unwrap();
        let mut first = Vec::new();
        while let Some(pair) = fs.next_fingerprint().unwrap() {
            first.push(pair);
        }
        fs.reopen(&bytes).unwrap();
        let mut second = Vec::new();
        while let Some(pair) = fs.next_fingerprint().unwrap() {
            second.push(pair);
        }
        assert_eq!(first, second);
        assert!(!first.is_empty());
    }

    #[test]
    fn truncated_stream_surfaces_an_error() {
        let clip = test_clip(23, 2.0);
        let bytes = Encoder::encode_clip(&clip, EncoderConfig::default());
        let cut = &bytes[..bytes.len() - bytes.len() / 3];
        let ex = FeatureExtractor::new(FeatureConfig::default());
        let mut fs = FingerprintStream::new(cut, ex).unwrap();
        let result = loop {
            match fs.next_fingerprint() {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        assert!(result.is_err(), "truncation must surface as an error, got {result:?}");
    }

    #[test]
    fn recovery_mode_survives_truncation_and_reports_health() {
        let clip = test_clip(24, 3.0);
        let bytes = Encoder::encode_clip(&clip, EncoderConfig::default());
        let cut = &bytes[..bytes.len() - bytes.len() / 3];
        let ex = FeatureExtractor::new(FeatureConfig::default());
        let mut fs = FingerprintStream::new_with_recovery(cut, ex, true).unwrap();
        let mut n = 0usize;
        while fs.next_fingerprint().unwrap().is_some() {
            n += 1;
        }
        assert!(n > 0, "intact prefix must still fingerprint");
        assert!(fs.health().frames_dropped >= 1, "{:?}", fs.health());

        // Health carries across `reopen`; the recovery flag does too, so
        // re-ingesting the same truncated bytes doubles the counters
        // instead of erroring.
        let before = fs.health();
        fs.reopen(cut).unwrap();
        while fs.next_fingerprint().unwrap().is_some() {}
        let after = fs.health();
        assert_eq!(after.frames_dropped, 2 * before.frames_dropped);
        assert_eq!(after.bytes_skipped, 2 * before.bytes_skipped);
    }
}
