//! K-min-hash sketches of cell-id sets.

use crate::hash::MinHashFamily;

/// A K-min-hash sketch: for each of the family's `K` functions, the
/// minimum hash value over the sketched set. The empty set sketches to
/// all-`u64::MAX`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sketch {
    mins: Vec<u64>,
}

impl Sketch {
    /// An empty-set sketch for a family with `k` functions.
    pub fn empty(k: usize) -> Sketch {
        Sketch { mins: vec![u64::MAX; k] }
    }

    /// Reset to the empty-set sketch for `k` functions, reusing the
    /// existing allocation. After the first call with a given `k` this
    /// touches no allocator — the zero-alloc primitive behind the
    /// detector's per-window scratch sketch. (`Default` yields a detached
    /// zero-`K` sketch whose only purpose is to be `reset` or
    /// `copy_from`-ed into.)
    pub fn reset(&mut self, k: usize) {
        if self.mins.len() == k {
            self.mins.fill(u64::MAX);
        } else {
            self.mins.clear();
            // vdsms-lint: allow(no-alloc-hot-path) reason="warm-up only: resizes once per K change, then the branch above reuses the buffer"
            self.mins.resize(k, u64::MAX);
        }
    }

    /// Copy another sketch's minima into this one, reusing the existing
    /// allocation (unlike `clone`, no heap traffic once capacities
    /// match).
    pub fn copy_from(&mut self, other: &Sketch) {
        self.mins.clear();
        self.mins.extend_from_slice(other.mins());
    }

    /// Reconstruct a sketch from previously-computed minima (e.g. loaded
    /// from persistent storage). The values are only meaningful against
    /// the family they were originally computed with.
    ///
    /// # Panics
    /// Panics if `mins` is empty.
    pub fn from_mins(mins: Vec<u64>) -> Sketch {
        assert!(!mins.is_empty(), "a sketch needs at least one hash function");
        Sketch { mins }
    }

    /// Sketch a set of cell ids.
    pub fn from_ids<I: IntoIterator<Item = u64>>(family: &MinHashFamily, ids: I) -> Sketch {
        let mut s = Sketch::empty(family.k());
        for id in ids {
            family.update_mins(id, &mut s.mins);
        }
        s
    }

    /// Number of hash functions `K`.
    pub fn k(&self) -> usize {
        self.mins.len()
    }

    /// Whether no element has been added.
    pub fn is_empty(&self) -> bool {
        self.mins.iter().all(|&m| m == u64::MAX)
    }

    /// The per-function minima.
    pub fn mins(&self) -> &[u64] {
        &self.mins
    }

    /// Add one element.
    pub fn insert(&mut self, family: &MinHashFamily, id: u64) {
        assert_eq!(family.k(), self.k(), "family/sketch K mismatch");
        family.update_mins(id, &mut self.mins);
    }

    /// Add one element — identical to [`Sketch::insert`], named for the
    /// streaming hot path: updating K minima in place touches no
    /// allocator, unlike what the container-flavoured name `insert`
    /// suggests (which the `no-alloc-hot-path` lint rule flags on sight).
    pub fn observe(&mut self, family: &MinHashFamily, id: u64) {
        assert_eq!(family.k(), self.k(), "family/sketch K mismatch");
        family.update_mins(id, &mut self.mins);
    }

    /// Add a batch of elements — exactly equivalent to calling
    /// [`Sketch::observe`] once per id (in any order), but routed through
    /// the family's chunked kernel so a whole basic window folds into the
    /// sketch in one pass over the coefficient table.
    pub fn observe_batch(&mut self, family: &MinHashFamily, ids: &[u64]) {
        assert_eq!(family.k(), self.k(), "family/sketch K mismatch");
        family.update_mins_batch(ids, &mut self.mins);
    }

    /// [`Sketch::observe_batch`] through a [`crate::HashColumnCache`]:
    /// bit-identical minima, but ids seen recently fold their cached
    /// hash column in one element-wise pass instead of re-evaluating
    /// the family. This is the streaming window fold — adjacent key
    /// frames usually repeat their cell id.
    pub fn observe_batch_cached(
        &mut self,
        family: &MinHashFamily,
        cache: &mut crate::HashColumnCache,
        ids: &[u64],
    ) {
        assert_eq!(family.k(), self.k(), "family/sketch K mismatch");
        for &id in ids {
            cache.fold_min(family, id, &mut self.mins);
        }
    }

    /// Combine with another sketch in place (paper Property 1): the result
    /// is the sketch of the union of the two underlying sets.
    pub fn combine(&mut self, other: &Sketch) {
        assert_eq!(self.k(), other.k(), "sketch K mismatch");
        for (a, &b) in self.mins.iter_mut().zip(&other.mins) {
            if b < *a {
                *a = b;
            }
        }
    }

    /// The combination of two sketches, non-destructively.
    pub fn combined(&self, other: &Sketch) -> Sketch {
        let mut out = self.clone();
        out.combine(other);
        out
    }

    /// Number of positions where the two sketches agree. This is the
    /// `C_comp` hot loop of the "Sketch" representation in the paper's
    /// cost analysis (Section IV-B).
    pub fn equal_count(&self, other: &Sketch) -> usize {
        assert_eq!(self.k(), other.k(), "sketch K mismatch");
        self.mins.iter().zip(&other.mins).filter(|(a, b)| a == b).count()
    }

    /// Estimated Jaccard similarity: `equal_count / K` (paper Eq. 3).
    pub fn estimate_similarity(&self, other: &Sketch) -> f64 {
        self.equal_count(other) as f64 / self.k() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::jaccard;

    fn family(k: usize) -> MinHashFamily {
        MinHashFamily::new(k, 42)
    }

    fn set_a() -> Vec<u64> {
        (0..200u64).map(|i| i * 7 + 1).collect()
    }

    fn set_b() -> Vec<u64> {
        // Overlaps set_a in half its elements.
        (0..200u64).map(|i| if i % 2 == 0 { i * 7 + 1 } else { i * 7 + 1_000_003 }).collect()
    }

    #[test]
    fn identical_sets_have_similarity_one() {
        let f = family(128);
        let a = Sketch::from_ids(&f, set_a());
        let b = Sketch::from_ids(&f, set_a());
        assert_eq!(a.estimate_similarity(&b), 1.0);
    }

    #[test]
    fn disjoint_sets_have_similarity_near_zero() {
        let f = family(256);
        let a = Sketch::from_ids(&f, 0..100u64);
        let b = Sketch::from_ids(&f, (0..100u64).map(|i| i + 1_000_000));
        assert!(a.estimate_similarity(&b) < 0.05);
    }

    #[test]
    fn estimate_tracks_exact_jaccard() {
        let f = family(2048);
        let (va, vb) = (set_a(), set_b());
        let exact = jaccard(va.iter().copied(), vb.iter().copied());
        let est = Sketch::from_ids(&f, va).estimate_similarity(&Sketch::from_ids(&f, vb));
        assert!(
            (est - exact).abs() < 0.05,
            "estimate {est} too far from exact {exact} at K=2048"
        );
    }

    #[test]
    fn estimate_variance_shrinks_with_k() {
        let (va, vb) = (set_a(), set_b());
        let exact = jaccard(va.iter().copied(), vb.iter().copied());
        let err_at = |k: usize, seed: u64| {
            let f = MinHashFamily::new(k, seed);
            let est = Sketch::from_ids(&f, va.clone())
                .estimate_similarity(&Sketch::from_ids(&f, vb.clone()));
            (est - exact).abs()
        };
        let mean_err_small: f64 = (0..8).map(|s| err_at(32, s)).sum::<f64>() / 8.0;
        let mean_err_large: f64 = (0..8).map(|s| err_at(2048, s)).sum::<f64>() / 8.0;
        assert!(
            mean_err_large < mean_err_small,
            "K=2048 err {mean_err_large} not below K=32 err {mean_err_small}"
        );
    }

    #[test]
    fn combine_equals_sketch_of_union() {
        // Property 1, exactly (not approximately).
        let f = family(512);
        let a: Vec<u64> = (0..50).collect();
        let b: Vec<u64> = (30..90).collect();
        let mut sa = Sketch::from_ids(&f, a.iter().copied());
        let sb = Sketch::from_ids(&f, b.iter().copied());
        sa.combine(&sb);
        let union = Sketch::from_ids(&f, a.into_iter().chain(b));
        assert_eq!(sa, union);
    }

    #[test]
    fn combine_is_commutative_associative_idempotent() {
        let f = family(64);
        let s1 = Sketch::from_ids(&f, 0..10u64);
        let s2 = Sketch::from_ids(&f, 5..20u64);
        let s3 = Sketch::from_ids(&f, 100..120u64);
        assert_eq!(s1.combined(&s2), s2.combined(&s1));
        assert_eq!(s1.combined(&s2).combined(&s3), s1.combined(&s2.combined(&s3)));
        assert_eq!(s1.combined(&s1), s1);
    }

    #[test]
    fn empty_sketch_is_identity_for_combine() {
        let f = family(64);
        let s = Sketch::from_ids(&f, 3..30u64);
        assert_eq!(s.combined(&Sketch::empty(64)), s);
        assert!(Sketch::empty(64).is_empty());
        assert!(!s.is_empty());
    }

    #[test]
    fn observe_batch_matches_sequential_observes() {
        // Exercise every chunk shape: empty, sub-chunk remainder, exactly
        // one chunk, chunk + remainder, multiple chunks.
        let f = family(97);
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 40] {
            let ids: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37_79b9) ^ 0xabcd).collect();
            let mut batched = Sketch::empty(97);
            batched.observe_batch(&f, &ids);
            let mut seq = Sketch::empty(97);
            for &id in &ids {
                seq.observe(&f, id);
            }
            assert_eq!(batched, seq, "batch/sequential divergence at n={n}");
        }
    }

    #[test]
    fn insert_incrementally_matches_from_ids() {
        let f = family(128);
        let mut s = Sketch::empty(128);
        for id in set_a() {
            s.insert(&f, id);
        }
        assert_eq!(s, Sketch::from_ids(&f, set_a()));
    }

    #[test]
    fn reset_and_copy_from_reuse_the_buffer() {
        let f = family(64);
        let mut s = Sketch::from_ids(&f, 0..40u64);
        s.reset(64);
        assert_eq!(s, Sketch::empty(64));
        // Growing from the detached default works too.
        let mut d = Sketch::default();
        d.reset(64);
        assert_eq!(d, Sketch::empty(64));
        let src = Sketch::from_ids(&f, 5..25u64);
        d.copy_from(&src);
        assert_eq!(d, src);
        // And shrinking to a smaller K.
        d.reset(16);
        assert_eq!(d, Sketch::empty(16));
    }

    #[test]
    #[should_panic(expected = "K mismatch")]
    fn mismatched_k_panics() {
        let f = family(8);
        let a = Sketch::from_ids(&f, 0..4u64);
        let b = Sketch::empty(16);
        let _ = a.equal_count(&b);
    }
}
