//! Frame-sequence distance measures used by the baselines.

/// L1 (city-block) distance between two feature vectors.
///
/// # Panics
/// Panics if the vectors differ in dimensionality.
pub fn l1(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "feature dimensionality mismatch");
    a.iter().zip(b).map(|(&x, &y)| f64::from((x - y).abs())).sum()
}

/// The Seq measure (Hampapur et al.): mean distance between temporally
/// aligned frame pairs. When the sequences differ in length (different
/// frame rates), the shorter index range is scaled over the longer — a
/// uniform temporal alignment, which is the strongest variant of the
/// original fixed-alignment measure.
///
/// # Panics
/// Panics if either sequence is empty.
pub fn seq_distance(q: &[Vec<f32>], p: &[Vec<f32>]) -> f64 {
    assert!(!q.is_empty() && !p.is_empty(), "empty sequence");
    let n = q.len().min(p.len());
    if n == 1 {
        return l1(&q[0], &p[0]);
    }
    let mut total = 0.0f64;
    // Endpoint-inclusive uniform mapping (first and last frames align
    // exactly regardless of the rate ratio).
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let qi = (i * (q.len() - 1) + (n - 1) / 2) / (n - 1);
        let pi = (i * (p.len() - 1) + (n - 1) / 2) / (n - 1);
        total += l1(&q[qi], &p[pi]);
    }
    total / n as f64
}

/// Banded dynamic time warping (the Warp measure, Chiu et al.): minimum
/// cumulative frame distance over monotone alignments within a
/// Sakoe–Chiba band of half-width `r`, normalized by the warping path
/// length. `r` is in frames; `r = 0` degenerates to the aligned diagonal.
///
/// Runs in `O(n·r)` time and `O(n)` space.
///
/// # Panics
/// Panics if either sequence is empty.
pub fn banded_dtw(q: &[Vec<f32>], p: &[Vec<f32>], r: usize) -> f64 {
    assert!(!q.is_empty() && !p.is_empty(), "empty sequence");
    let n = q.len();
    let m = p.len();
    // The band must at least cover the length difference or no monotone
    // path exists.
    let r = r.max(n.abs_diff(m));

    const INF: f64 = f64::INFINITY;
    // Rolling rows of (cost, path_len). Column j of row i is reachable iff
    // |i*m/n - j| <= r (diagonal-adjusted band).
    let mut prev = vec![(INF, 0u32); m];
    let mut cur = vec![(INF, 0u32); m];

    // Indexing (not iterating) `q` is intentional: `i` also drives the
    // diagonal-adjusted band bounds.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let centre = i * m / n;
        let lo = centre.saturating_sub(r);
        let hi = (centre + r).min(m - 1);
        for c in cur.iter_mut() {
            *c = (INF, 0);
        }
        for j in lo..=hi {
            let d = l1(&q[i], &p[j]);
            let (best_cost, best_len) = if i == 0 && j == 0 {
                (0.0, 0u32)
            } else {
                let mut best = (INF, 0u32);
                if i > 0 && prev[j].0 < best.0 {
                    best = prev[j];
                }
                if j > 0 && cur[j - 1].0 < best.0 {
                    best = cur[j - 1];
                }
                if i > 0 && j > 0 && prev[j - 1].0 < best.0 {
                    best = prev[j - 1];
                }
                best
            };
            if best_cost < INF {
                cur[j] = (best_cost + d, best_len + 1);
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }

    let (cost, len) = prev[m - 1];
    if cost.is_finite() && len > 0 {
        cost / f64::from(len)
    } else {
        INF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(vals: &[f32]) -> Vec<Vec<f32>> {
        vals.iter().map(|&v| vec![v]).collect()
    }

    #[test]
    fn l1_basics() {
        assert_eq!(l1(&[0.0, 0.5], &[0.5, 0.0]), 1.0);
        assert_eq!(l1(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn seq_distance_zero_for_identical() {
        let a = seq(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(seq_distance(&a, &a), 0.0);
    }

    #[test]
    fn seq_distance_detects_reordering() {
        // The whole point of the paper's comparison: Seq is order-
        // sensitive, so the same frames re-ordered score badly.
        let a = seq(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        let reordered = seq(&[1.0, 0.75, 0.5, 0.25, 0.0]);
        assert!(seq_distance(&a, &reordered) > 0.4);
    }

    #[test]
    fn seq_distance_handles_length_mismatch() {
        let a = seq(&[0.0, 0.5, 1.0]);
        let b = seq(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        // Uniform alignment: nearly identical content at different rates.
        assert!(seq_distance(&a, &b) < 0.15);
    }

    #[test]
    fn dtw_zero_for_identical() {
        let a = seq(&[0.1, 0.2, 0.9, 0.4]);
        assert_eq!(banded_dtw(&a, &a, 1), 0.0);
    }

    #[test]
    fn dtw_tolerates_local_time_shift_where_seq_does_not() {
        // b is a one-frame-delayed copy of a; Warp recovers, Seq pays.
        let a = seq(&[0.0, 0.1, 0.8, 0.1, 0.0, 0.0]);
        let b = seq(&[0.0, 0.0, 0.1, 0.8, 0.1, 0.0]);
        let warp = banded_dtw(&a, &b, 2);
        let aligned = seq_distance(&a, &b);
        assert!(warp < aligned / 3.0, "warp {warp} vs aligned {aligned}");
    }

    #[test]
    fn dtw_cannot_fix_global_reordering() {
        // DTW alignments are monotone: swapping the two halves of a
        // sequence defeats it (the paper's Fig. 15 point).
        let a = seq(&[0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let swapped = seq(&[1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
        assert!(banded_dtw(&a, &swapped, 3) > 0.3);
    }

    #[test]
    fn dtw_wider_band_never_hurts() {
        let a = seq(&[0.0, 0.3, 0.9, 0.2, 0.5, 0.1, 0.7]);
        let b = seq(&[0.1, 0.9, 0.3, 0.2, 0.4, 0.6, 0.0]);
        let mut last = f64::INFINITY;
        for r in [0usize, 1, 2, 4, 8] {
            let d = banded_dtw(&a, &b, r);
            assert!(d <= last + 1e-9, "wider band must not increase DTW");
            last = d;
        }
    }

    #[test]
    fn dtw_handles_unequal_lengths() {
        let a = seq(&[0.0, 0.5, 1.0]);
        let b = seq(&[0.0, 0.2, 0.5, 0.8, 1.0]);
        let d = banded_dtw(&a, &b, 1);
        assert!(d.is_finite());
        assert!(d < 0.1, "stretched copy should align well: {d}");
    }

    #[test]
    fn dtw_r0_equals_diagonal_for_equal_lengths() {
        let a = seq(&[0.1, 0.4, 0.7]);
        let b = seq(&[0.2, 0.2, 0.9]);
        let d = banded_dtw(&a, &b, 0);
        // Diagonal path: |0.1-0.2|+|0.4-0.2|+|0.7-0.9| over path length 3.
        assert!((d - 0.5 / 3.0).abs() < 1e-6);
    }
}
