//! Property tests pinning the BitSig word kernels to the per-relation
//! reference path.
//!
//! The hot path builds and merges signatures a `u64` lane (32 relation
//! pairs) at a time: `encode_into` writes whole words, `or_word` flushes
//! the probe's batched pairs, and `counts`/`or_with_counts` classify all
//! 32 pairs of a word with three bitwise ops. The slow path —
//! `set_relation` on one pair at a time plus `count_less`/`count_equal`
//! — is the semantic reference. These properties hold the two exactly
//! equal across the word-boundary zoo `k ∈ {1, 31, 32, 33, 64, 800}`:
//! below, on, and above a lane edge, plus the engine's default `K`
//! (a whole number of lanes, so the tail mask is all-ones).

use proptest::prelude::*;
use vdsms_core::BitSig;
use vdsms_sketch::Sketch;

const K_EDGE_CASES: &[usize] = &[1, 31, 32, 33, 64, 800];

/// Build a signature one relation at a time — the reference encoder.
fn reference_sig(candidate: &[u64], query: &[u64]) -> BitSig {
    let mut sig = BitSig::all_greater(candidate.len());
    for (r, (&c, &q)) in candidate.iter().zip(query).enumerate() {
        sig.set_relation(r, c, q);
    }
    sig
}

/// Count relations straight off the values — the reference counter.
fn reference_counts(candidate: &[u64], query: &[u64]) -> (usize, usize) {
    let n_less = candidate.iter().zip(query).filter(|(c, q)| c < q).count();
    let n_eq = candidate.iter().zip(query).filter(|(c, q)| c == q).count();
    (n_less, n_eq)
}

/// A shared pool of min values; each case slices three `k`-length
/// vectors out of it. Small value ranges make every relation (and plenty
/// of ties) likely. `k` is drawn as an index into [`K_EDGE_CASES`].
const POOL: usize = 800;

fn slices(data: &[u64], k: usize) -> (&[u64], &[u64], &[u64]) {
    (&data[..k], &data[POOL..POOL + k], &data[2 * POOL..2 * POOL + k])
}

/// Word-building `encode`/`encode_into` equals per-relation
/// `set_relation`, and the single-pass `counts` kernel equals counting
/// the raw values — including the masked tail word.
fn check_encode_and_counts(k: usize, c: &[u64], q: &[u64]) {
    let cs = Sketch::from_mins(c.to_vec());
    let qs = Sketch::from_mins(q.to_vec());
    let sig = BitSig::encode(&cs, &qs);
    assert_eq!(&sig, &reference_sig(c, q));
    assert_eq!(sig.k(), k);

    let (n_less, n_eq) = reference_counts(c, q);
    assert_eq!(sig.counts(), (n_less, n_eq));
    assert_eq!(sig.count_less(), n_less);
    assert_eq!(sig.count_equal(), n_eq);

    // encode_into reuses a dirty signature; it must fully overwrite.
    let mut reused = reference_sig(q, c); // deliberately different contents
    reused.encode_into(&cs, &qs);
    assert_eq!(&reused, &sig);
}

/// The fused merge+count kernel equals merge-then-count, and the derived
/// predicates agree with their count-free entry points.
fn check_or_with_counts(c: &[u64], q: &[u64], c2: &[u64]) {
    let qs = Sketch::from_mins(q.to_vec());
    let a = BitSig::encode(&Sketch::from_mins(c.to_vec()), &qs);
    let b = BitSig::encode(&Sketch::from_mins(c2.to_vec()), &qs);

    let mut fused = a.clone();
    let (n_less, n_eq) = fused.or_with_counts(&b);

    let mut twopass = a.clone();
    twopass.or_with(&b);
    assert_eq!(&fused, &twopass);
    assert_eq!((n_less, n_eq), twopass.counts());

    assert_eq!(fused.similarity_from_count(n_eq), twopass.similarity());
    for delta in [0.0, 0.3, 0.7, 1.0] {
        assert_eq!(fused.lemma2_from_count(n_less, delta), twopass.violates_lemma2(delta));
    }
}

/// The probe's batched build — accumulate `relation_pair`s into a
/// pending register, `or_word` every 32 rows and at the last row —
/// reproduces `encode` exactly, for every lane-boundary `k`.
fn check_or_word_batching(k: usize, c: &[u64], q: &[u64]) {
    let sig = BitSig::encode(&Sketch::from_mins(c.to_vec()), &Sketch::from_mins(q.to_vec()));

    let mut batched = BitSig::all_greater(k);
    let mut pending = 0u64;
    for (i, (&cv, &qv)) in c.iter().zip(q).enumerate() {
        pending |= BitSig::relation_pair(cv, qv) << (2 * (i % 32));
        if i % 32 == 31 || i + 1 == k {
            batched.or_word(i / 32, pending);
            pending = 0;
        }
    }
    assert_eq!(&batched, &sig);
    assert_eq!(batched.counts(), sig.counts());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_and_counts_match_reference(
        sel in 0usize..6,
        data in proptest::collection::vec(0u64..6, 3 * POOL..3 * POOL + 1),
    ) {
        let (c, q, _) = slices(&data, K_EDGE_CASES[sel]);
        check_encode_and_counts(K_EDGE_CASES[sel], c, q);
    }

    #[test]
    fn or_with_counts_matches_merge_then_count(
        sel in 0usize..6,
        data in proptest::collection::vec(0u64..6, 3 * POOL..3 * POOL + 1),
    ) {
        let (c, q, c2) = slices(&data, K_EDGE_CASES[sel]);
        check_or_with_counts(c, q, c2);
    }

    #[test]
    fn or_word_batching_matches_encode(
        sel in 0usize..6,
        data in proptest::collection::vec(0u64..6, 3 * POOL..3 * POOL + 1),
    ) {
        let (c, q, _) = slices(&data, K_EDGE_CASES[sel]);
        check_or_word_batching(K_EDGE_CASES[sel], c, q);
    }
}

/// Tail-mask edge pinned explicitly: at `k = 33` the last word holds one
/// pair; an all-less signature must count exactly 33 (not 64-worth of
/// set bits), and at `k = 32`/`800` (whole lanes) the mask is all-ones.
#[test]
fn tail_mask_counts_exact_k() {
    for &k in K_EDGE_CASES {
        let c = vec![0u64; k];
        let q = vec![1u64; k]; // candidate < query everywhere
        let sig = BitSig::encode(&Sketch::from_mins(c), &Sketch::from_mins(q));
        assert_eq!(sig.counts(), (k, 0), "all-less counts at k={k}");
        assert_eq!(sig.similarity(), 0.0);

        let e = vec![2u64; k];
        let sig = BitSig::encode(&Sketch::from_mins(e.clone()), &Sketch::from_mins(e));
        assert_eq!(sig.counts(), (0, k), "all-equal counts at k={k}");
        assert_eq!(sig.similarity(), 1.0);
    }
}
