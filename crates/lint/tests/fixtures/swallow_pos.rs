// no-swallowed-error positive fixture: Results discarded via `let _ =`
// and statement-level `.ok()`.

use std::sync::mpsc::Sender;

fn refresh_index() -> Result<(), String> {
    Err("io".to_string())
}

fn cleanup() {}

// `let _ =` on a workspace call that returns Result.
pub fn ignores_refresh() {
    let _ = refresh_index();
}

// Statement-level `.ok()` used purely to swallow.
pub fn oks_away() {
    refresh_index().ok();
    cleanup();
}

// A discarded channel send: the Result is the disconnect signal.
pub fn drops_send(tx: &Sender<u32>) {
    let _ = tx.send(1);
}
