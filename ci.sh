#!/usr/bin/env bash
# Local CI: offline build, full test suite, lints. Mirrors what the
# tier-1 gate runs, plus clippy.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== benches compile =="
cargo bench --no-run -q

echo "== primitives bench smoke (--test mode) =="
# One pass per kernel row in test mode: catches panics/asserts in the
# per-stage hot-path benches without paying for real measurement.
cargo bench -q -p vdsms-bench --bench primitives -- --test

echo "== static-analysis gate (vdsms-lint, cold then warm) =="
# Cold: wipe the incremental cache, every file parses. Warm: the same
# gate again — every file must come from the cache with byte-identical
# output, and the warm pass must be measurably faster.
cargo build --release -q -p vdsms-lint
rm -rf "${CARGO_TARGET_DIR:-target}/vdsms-lint-cache"
lint_tmp="$(mktemp -d)"
cold_start=$(date +%s%N)
./target/release/vdsms-lint > "$lint_tmp/cold.txt" 2> "$lint_tmp/cold_err.txt"
cold_end=$(date +%s%N)
grep -q "cache: 0 reused" "$lint_tmp/cold_err.txt" \
  || { echo "cold lint run should parse everything"; cat "$lint_tmp/cold_err.txt"; exit 1; }
warm_start=$(date +%s%N)
./target/release/vdsms-lint > "$lint_tmp/warm.txt" 2> "$lint_tmp/warm_err.txt"
warm_end=$(date +%s%N)
grep -Eq "cache: [1-9][0-9]* reused, 0 parsed" "$lint_tmp/warm_err.txt" \
  || { echo "warm lint run should reuse every summary"; cat "$lint_tmp/warm_err.txt"; exit 1; }
cmp -s "$lint_tmp/cold.txt" "$lint_tmp/warm.txt" \
  || { echo "cold and warm lint output differ"; diff "$lint_tmp/cold.txt" "$lint_tmp/warm.txt"; exit 1; }
cold_ms=$(( (cold_end - cold_start) / 1000000 ))
warm_ms=$(( (warm_end - warm_start) / 1000000 ))
echo "lint: cold ${cold_ms}ms, warm ${warm_ms}ms"
# The report cache makes a fully-warm run skip parsing AND linking;
# anything under 5x means the cache regressed (observed headroom ~13x).
[ "$(( cold_ms >= 5 * (warm_ms < 1 ? 1 : warm_ms) ))" -eq 1 ] \
  || { echo "warm lint run should be >=5x faster than cold (${cold_ms}ms vs ${warm_ms}ms)"; exit 1; }
./target/release/vdsms-lint --format sarif > lint-report.sarif \
  || { echo "SARIF export failed"; exit 1; }
grep -q '"version": "2.1.0"' lint-report.sarif \
  || { echo "lint-report.sarif is not a SARIF 2.1.0 document"; exit 1; }
echo "lint: SARIF artifact at lint-report.sarif"
rm -rf "$lint_tmp"

echo "== schedule exploration (seeded concurrency model check, release) =="
# 1000 seeds per scenario (~3000 distinct interleavings of the fleet's
# quiesce / crash-restart / shutdown protocols), pinned so a failure
# names a replayable seed. The suite also proves its own teeth: the
# deliberately disarmed quiesce barrier must be *caught* by the range.
VDSMS_SCHED_SEEDS=1000 cargo test --release -q --test schedule_exploration

echo "== zero-alloc steady state (release) =="
cargo test --release -q --test alloc_steady_state

echo "== decoder fuzz (bounded, release) =="
cargo test --release -q --test decoder_fuzz

echo "== fault-injection smoke (vdsms monitor --inject-faults) =="
cargo build --release -q -p vdsms-cli
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./target/release/vdsms generate --seed 300 --seconds 10 --out "$tmp/q.vdsm"
./target/release/vdsms generate --seed 920 --seconds 20 --out "$tmp/s.vdsm"
./target/release/vdsms sketch --window-keyframes 6 "$tmp/q.vdsm" --out "$tmp/q.vdsq"
./target/release/vdsms monitor --queries "$tmp/q.vdsq" --window-keyframes 6 --recover \
  --inject-faults "seed=7,flip=0.05,drop=0.02,delete=0.01,insert=0.01" \
  "$tmp/s.vdsm" > "$tmp/out.txt" 2> "$tmp/err.txt" \
  || { echo "fault-injection smoke failed"; cat "$tmp/out.txt" "$tmp/err.txt"; exit 1; }
grep -q "fault-injected" "$tmp/err.txt" \
  || { echo "expected a degraded-stream summary on stderr"; cat "$tmp/err.txt"; exit 1; }

echo "== attack-matrix smoke + robustness floors (vdsms eval-attacks) =="
# 2 attacks × 2 detectors on a short stream; --check fails the build if
# any cell's recall/precision drops below the committed floor (seed must
# match the floor file — see BENCH_robustness.json).
./target/release/vdsms eval-attacks --seed 7 --profile smoke \
  --check BENCH_robustness.json > "$tmp/matrix.txt" 2> "$tmp/matrix_err.txt" \
  || { echo "attack-matrix floor check failed"; cat "$tmp/matrix.txt" "$tmp/matrix_err.txt"; exit 1; }
grep -q "floor check passed" "$tmp/matrix_err.txt" \
  || { echo "expected a floor-check confirmation"; cat "$tmp/matrix_err.txt"; exit 1; }

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "== rustdoc =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "CI OK"
