//! Per-basic-window state shared by the candidate stores.

use crate::bitsig::BitSig;
use crate::query::{QueryId, QuerySet};
use crate::stats::Stats;
use std::collections::BTreeMap;
use vdsms_sketch::Sketch;

/// A completed basic window: `w` key frames sketched as a set of cell ids.
#[derive(Debug, Clone)]
pub struct Window {
    /// Zero-based window index within the stream.
    pub index: u64,
    /// Stream frame index of the window's first key frame.
    pub start_frame: u64,
    /// Stream frame index of the window's last key frame (inclusive).
    pub end_frame: u64,
    /// K-min-hash sketch of the window's cell-id set.
    pub sketch: Sketch,
}

/// The window's relations to the query set: the related-query list `R_L`
/// (from the index probe, or all queries for the NoIndex variants) plus a
/// lazy cache of bit signatures.
///
/// Signatures for queries *not* surfaced by the probe are computed on
/// demand (an `O(K)` encode) — this happens when an old candidate tracks a
/// query that the newest window shares no min-hash values with, and its
/// cost is exactly what Lemma-2 pruning keeps rare.
#[derive(Debug)]
pub struct WindowRelations {
    /// Related queries as `(id, keyframes)`.
    related: Vec<(QueryId, usize)>,
    sigs: BTreeMap<QueryId, BitSig>,
}

impl WindowRelations {
    /// Build from a probe result (signatures already known).
    pub fn from_probe(hits: Vec<crate::hq::ProbeHit>) -> WindowRelations {
        let related = hits.iter().map(|h| (h.query_id, h.keyframes)).collect();
        let sigs = hits.into_iter().map(|h| (h.query_id, h.sig)).collect();
        WindowRelations { related, sigs }
    }

    /// Build for the NoIndex variants: every query is related; signatures
    /// are encoded lazily as the stores touch them.
    pub fn all_queries(queries: &QuerySet) -> WindowRelations {
        WindowRelations {
            related: queries.iter().map(|q| (q.id, q.keyframes)).collect(),
            sigs: BTreeMap::new(),
        }
    }

    /// The related-query list for this window.
    pub fn related(&self) -> &[(QueryId, usize)] {
        &self.related
    }

    /// The window's bit signature relative to query `qid`, encoding it on
    /// demand if the probe did not produce it. Returns `None` if the query
    /// has been unsubscribed.
    pub fn sig_for(
        &mut self,
        qid: QueryId,
        window_sketch: &Sketch,
        queries: &QuerySet,
        stats: &mut Stats,
    ) -> Option<&BitSig> {
        use std::collections::btree_map::Entry;
        match self.sigs.entry(qid) {
            Entry::Occupied(e) => Some(e.into_mut()),
            Entry::Vacant(e) => {
                let q = queries.get(qid)?;
                stats.sig_encodes += 1;
                Some(e.insert(BitSig::encode(window_sketch, &q.sketch)))
            }
        }
    }
}

/// Relation counts between two raw sketches: `(n_equal, n_less)` where
/// `n_less` counts positions with `a < b`. This is the Sketch
/// representation's comparison primitive (`C_comp`), also used for its
/// Lemma-2 pruning.
pub fn sketch_relations(a: &Sketch, b: &Sketch) -> (usize, usize) {
    assert_eq!(a.k(), b.k(), "sketch K mismatch");
    let mut n_eq = 0usize;
    let mut n_less = 0usize;
    for (&x, &y) in a.mins().iter().zip(b.mins()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Equal => n_eq += 1,
            std::cmp::Ordering::Less => n_less += 1,
            std::cmp::Ordering::Greater => {}
        }
    }
    (n_eq, n_less)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use vdsms_sketch::MinHashFamily;

    #[test]
    fn sketch_relations_counts_match_bitsig() {
        let f = MinHashFamily::new(100, 1);
        let a = Sketch::from_ids(&f, 0..50u64);
        let b = Sketch::from_ids(&f, 25..80u64);
        let (n_eq, n_less) = sketch_relations(&a, &b);
        let sig = BitSig::encode(&a, &b);
        assert_eq!(n_eq, sig.count_equal());
        assert_eq!(n_less, sig.count_less());
    }

    #[test]
    fn sig_for_encodes_on_demand_and_caches() {
        let f = MinHashFamily::new(32, 2);
        let queries = QuerySet::from_queries(vec![Query::from_cell_ids(9, &f, &[1, 2, 3])]);
        let w = Sketch::from_ids(&f, 1..4u64);
        let mut rel = WindowRelations::all_queries(&queries);
        let mut stats = Stats::default();
        let sig1 = rel.sig_for(9, &w, &queries, &mut stats).unwrap().clone();
        assert_eq!(stats.sig_encodes, 1);
        let sig2 = rel.sig_for(9, &w, &queries, &mut stats).unwrap().clone();
        assert_eq!(stats.sig_encodes, 1, "second access must hit the cache");
        assert_eq!(sig1, sig2);
        assert_eq!(sig1.similarity(), 1.0);
    }

    #[test]
    fn sig_for_unknown_query_is_none() {
        let f = MinHashFamily::new(32, 2);
        let queries = QuerySet::new();
        let w = Sketch::from_ids(&f, 1..4u64);
        let mut rel = WindowRelations::all_queries(&queries);
        let mut stats = Stats::default();
        assert!(rel.sig_for(42, &w, &queries, &mut stats).is_none());
    }
}
