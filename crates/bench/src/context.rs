//! Shared experiment context: builds the synthetic workload once and
//! caches every derived artifact (streams, fingerprints, query sketches)
//! across experiments, since e.g. a K sweep re-uses the same cell-id
//! sequences for every K.

use std::collections::HashMap;
use std::time::Instant;
use vdsms_baselines::{BaselineKind, BaselineMatcher, BaselineQuery};
use vdsms_codec::DcFrame;
use vdsms_core::{Detection, Detector, DetectorConfig, Query, QuerySet, Stats};
use vdsms_features::FeatureConfig;
use vdsms_workload::{
    compose_stream, fingerprint_stream, score, ClipLibrary, ComposedStream, FingerprintedStream,
    PrecisionRecall, StreamKind, WorkloadSpec,
};

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale smoke runs (CI).
    Quick,
    /// The default: a ~45-minute stream, 60 clips; an experiment suite in
    /// CPU-minutes.
    Default,
    /// The paper's full query count (m = 200) on a moderate stream:
    /// demonstrates the crossovers that need many queries (Fig. 9) in
    /// ~15 CPU-minutes.
    Large,
    /// The paper's proportions (12 hours, 200 clips of 30–300 s). Expect
    /// hours.
    Full,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "default" => Some(Scale::Default),
            "large" => Some(Scale::Large),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The workload spec for this scale.
    pub fn spec(self, seed: u64) -> WorkloadSpec {
        match self {
            Scale::Quick => WorkloadSpec {
                seed,
                num_clips: 16,
                inserted: 10,
                clip_min_s: 15.0,
                clip_max_s: 40.0,
                base_seconds: 400.0,
                ..Default::default()
            },
            Scale::Default => WorkloadSpec {
                seed,
                num_clips: 60,
                inserted: 25,
                clip_min_s: 30.0,
                clip_max_s: 120.0,
                base_seconds: 1200.0,
                ..Default::default()
            },
            Scale::Large => WorkloadSpec {
                seed,
                num_clips: 200,
                inserted: 50,
                clip_min_s: 30.0,
                clip_max_s: 60.0,
                base_seconds: 1800.0,
                ..Default::default()
            },
            Scale::Full => WorkloadSpec::paper_scale(seed),
        }
    }

    /// Sweep of hash-function counts K for the CPU experiment (Fig. 6,
    /// paper range 100–3000).
    pub fn k_sweep_cpu(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![100, 400, 1600],
            Scale::Default | Scale::Large => vec![100, 200, 400, 800, 1600, 3000],
            Scale::Full => vec![100, 200, 400, 800, 1600, 2400, 3000],
        }
    }

    /// Sweep of K for the accuracy experiment (Figs. 7–8, paper range
    /// 10–2000).
    pub fn k_sweep_accuracy(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![10, 100, 800],
            Scale::Default | Scale::Large => vec![10, 50, 100, 200, 400, 800, 2000],
            Scale::Full => vec![10, 50, 100, 200, 400, 800, 1200, 2000],
        }
    }

    /// Sweep of query counts m (Fig. 9, paper range 10–200), capped at the
    /// library size.
    pub fn m_sweep(self, max: usize) -> Vec<usize> {
        let base: &[usize] = match self {
            Scale::Quick => &[4, 8, 16],
            Scale::Default => &[10, 20, 30, 45, 60],
            Scale::Large | Scale::Full => &[10, 25, 50, 100, 150, 200],
        };
        base.iter().copied().filter(|&m| m <= max).collect()
    }

    /// Sweep of basic-window sizes in seconds (Figs. 10b–12, paper range
    /// 5–20 s).
    pub fn w_sweep(self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![5.0, 10.0],
            _ => vec![5.0, 10.0, 15.0, 20.0],
        }
    }

    /// Sweep of similarity thresholds δ (Figs. 10a/13, paper range
    /// 0.5–0.9).
    pub fn delta_sweep(self) -> Vec<f64> {
        vec![0.5, 0.6, 0.7, 0.8, 0.9]
    }
}

/// One detection run's measurements.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Detections produced.
    pub detections: Vec<Detection>,
    /// Engine counters.
    pub stats: Stats,
    /// Query-processing wall time (engine only).
    pub engine_seconds: f64,
    /// Accuracy against the stream's ground truth.
    pub pr: PrecisionRecall,
}

/// DC frames of (original clips, edited clips).
pub type ClipDcFrames = (Vec<Vec<DcFrame>>, Vec<Vec<DcFrame>>);

/// The shared, caching experiment context.
pub struct Ctx {
    spec: WorkloadSpec,
    library: ClipLibrary,
    features: FeatureConfig,
    streams: HashMap<StreamKind, ComposedStream>,
    fingerprints: HashMap<StreamKind, FingerprintedStream>,
    query_cells: Option<Vec<Vec<u64>>>,
    query_feats: Option<Vec<Vec<Vec<f32>>>>,
    /// DC frames of each original / edited clip (for Table II's per-(u,d)
    /// re-extraction).
    clip_dcs: Option<ClipDcFrames>,
    /// Whether to print progress lines to stderr.
    pub verbose: bool,
}

impl Ctx {
    /// Create a context for a scale.
    pub fn new(scale: Scale, seed: u64) -> Ctx {
        let spec = scale.spec(seed);
        Ctx::with_spec(spec)
    }

    /// Create a context for an explicit spec.
    pub fn with_spec(spec: WorkloadSpec) -> Ctx {
        let library = ClipLibrary::new(spec.clone());
        Ctx {
            spec,
            library,
            features: FeatureConfig::default(),
            streams: HashMap::new(),
            fingerprints: HashMap::new(),
            query_cells: None,
            query_feats: None,
            clip_dcs: None,
            verbose: true,
        }
    }

    /// The workload spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The clip library.
    pub fn library(&self) -> &ClipLibrary {
        &self.library
    }

    /// The default feature configuration (paper Table I).
    pub fn features(&self) -> &FeatureConfig {
        &self.features
    }

    fn progress(&self, msg: &str) {
        if self.verbose {
            eprintln!("[ctx] {msg}");
        }
    }

    /// The composed stream of a kind (built once).
    pub fn stream(&mut self, kind: StreamKind) -> &ComposedStream {
        if !self.streams.contains_key(&kind) {
            self.progress(&format!("composing {kind:?} stream..."));
            let t = Instant::now();
            let s = compose_stream(&self.library, kind);
            self.progress(&format!(
                "{kind:?}: {} frames, {} bytes, {:.1}s",
                s.total_frames,
                s.bitstream.len(),
                t.elapsed().as_secs_f64()
            ));
            self.streams.insert(kind, s);
        }
        &self.streams[&kind]
    }

    /// The fingerprinted view of a stream (default feature config).
    pub fn fingerprints(&mut self, kind: StreamKind) -> &FingerprintedStream {
        if !self.fingerprints.contains_key(&kind) {
            self.stream(kind);
            let fp = fingerprint_stream(&self.streams[&kind], &self.features.clone());
            self.fingerprints.insert(kind, fp);
        }
        &self.fingerprints[&kind]
    }

    /// Cell-id sequences of every query clip (default feature config).
    pub fn query_cells(&mut self) -> &Vec<Vec<u64>> {
        if self.query_cells.is_none() {
            self.progress(&format!("fingerprinting {} query clips...", self.library.len()));
            let fc = self.features;
            let cells = (0..self.library.len() as u32)
                .map(|id| self.library.query_fingerprints(id, &fc))
                .collect();
            self.query_cells = Some(cells);
        }
        self.query_cells.as_ref().expect("just built")
    }

    /// Per-key-frame feature vectors of every query clip (baseline input).
    pub fn query_features(&mut self) -> &Vec<Vec<Vec<f32>>> {
        if self.query_feats.is_none() {
            self.progress("extracting baseline query features...");
            let fc = self.features;
            let feats = (0..self.library.len() as u32)
                .map(|id| self.library.query_features(id, &fc))
                .collect();
            self.query_feats = Some(feats);
        }
        self.query_feats.as_ref().expect("just built")
    }

    /// DC frames of every original and edited clip (for Table II).
    pub fn clip_dc_frames(&mut self) -> &ClipDcFrames {
        if self.clip_dcs.is_none() {
            self.progress("decoding clip DC frames (originals + edited)...");
            let originals = (0..self.library.len() as u32)
                .map(|id| self.library.dc_frames(&self.library.original(id)))
                .collect();
            let edited = (0..self.library.len() as u32)
                .map(|id| self.library.dc_frames(&self.library.edited(id)))
                .collect();
            self.clip_dcs = Some((originals, edited));
        }
        self.clip_dcs.as_ref().expect("just built")
    }

    /// Build a query set of the first `m` clips for a detector config.
    pub fn query_set(&mut self, cfg: &DetectorConfig, m: usize) -> QuerySet {
        let m = m.min(self.library.len());
        let family = Detector::family_for(cfg);
        let cells = self.query_cells().clone();
        QuerySet::from_queries(
            (0..m as u32).map(|id| Query::from_cell_ids(id, &family, &cells[id as usize])).collect(),
        )
    }

    /// Run the engine over a stream with `m` queries; returns detections,
    /// stats, wall time, and accuracy.
    pub fn run_engine(&mut self, kind: StreamKind, cfg: DetectorConfig, m: usize) -> RunResult {
        cfg.validate();
        let queries = self.query_set(&cfg, m);
        let cells = self.fingerprints(kind).cell_ids.clone();
        let truth = self.stream(kind).truth.clone();
        let w_frames = (cfg.window_keyframes as f64 / self.spec.keyframe_rate()
            * self.spec.fps.as_f64())
        .round() as u64;
        let mut det = Detector::new(cfg, queries);
        let t = Instant::now();
        let detections = det.run(cells);
        let engine_seconds = t.elapsed().as_secs_f64();
        let pr = score(&detections, &truth, w_frames);
        RunResult { detections, stats: *det.stats(), engine_seconds, pr }
    }

    /// Run a baseline matcher over a stream with `m` queries.
    pub fn run_baseline(
        &mut self,
        kind: StreamKind,
        baseline: BaselineKind,
        threshold: f64,
        w_seconds: f64,
        m: usize,
    ) -> (PrecisionRecall, f64) {
        let m = m.min(self.library.len());
        let gap = self.spec.window_keyframes(w_seconds);
        let queries: Vec<BaselineQuery> = self
            .query_features()
            .iter()
            .take(m)
            .enumerate()
            .map(|(id, f)| BaselineQuery { id: id as u32, features: f.clone() })
            .collect();
        let feats = self.fingerprints(kind).features.clone();
        let truth = self.stream(kind).truth.clone();
        let w_frames = self.spec.window_frames(w_seconds);
        let mut matcher = BaselineMatcher::new(baseline, threshold, gap, queries);
        let t = Instant::now();
        let mut dets = Vec::new();
        for (frame, f) in feats {
            dets.extend(matcher.push_keyframe(frame, f));
        }
        let secs = t.elapsed().as_secs_f64();
        (score(&dets, &truth, w_frames), secs)
    }

    /// Partial-decode seconds of the stream (included in the paper's CPU
    /// measurements).
    pub fn decode_seconds(&mut self, kind: StreamKind) -> f64 {
        self.fingerprints(kind).decode_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdsms_core::{Order, Representation};

    fn quick_ctx() -> Ctx {
        let mut spec = WorkloadSpec::tiny(5);
        spec.num_clips = 6;
        spec.inserted = 3;
        spec.base_seconds = 90.0;
        let mut ctx = Ctx::with_spec(spec);
        ctx.verbose = false;
        ctx
    }

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn sweeps_respect_caps() {
        assert!(Scale::Default.m_sweep(30).iter().all(|&m| m <= 30));
        assert!(!Scale::Quick.k_sweep_cpu().is_empty());
    }

    #[test]
    fn engine_run_detects_on_vs1() {
        let mut ctx = quick_ctx();
        let cfg = DetectorConfig {
            k: 200,
            window_keyframes: ctx.spec().window_keyframes(5.0),
            order: Order::Sequential,
            representation: Representation::Bit,
            use_index: true,
            ..Default::default()
        };
        let m = ctx.library().len();
        let res = ctx.run_engine(StreamKind::Vs1, cfg, m);
        assert!(res.pr.recall >= 0.6, "recall {:?}", res.pr);
        assert!(res.pr.precision >= 0.9, "precision {:?}", res.pr);
        assert!(res.stats.windows > 0);
    }

    #[test]
    fn caches_are_reused() {
        let mut ctx = quick_ctx();
        let a = ctx.fingerprints(StreamKind::Vs1).cell_ids.len();
        let b = ctx.fingerprints(StreamKind::Vs1).cell_ids.len();
        assert_eq!(a, b);
        assert_eq!(ctx.streams.len(), 1);
    }
}
