//! Fused bytes→fingerprint streaming ingestion.
//!
//! [`FingerprintStream`] is the one ingestion front-end: it pulls key
//! frames straight out of a compressed bitstream with the pooled partial
//! decoder ([`vdsms_codec::PartialDecoder::next_dc_frame_into`]) and maps
//! each through the precomputed-plan fingerprint path
//! ([`FeatureExtractor::fingerprint_into`]), yielding
//! `(frame_index, cell_id)` pairs with **zero heap allocations per key
//! frame** in the steady state. The CLI, the fleet feeders and the
//! benches all ingest through this adapter, so the compressed-domain
//! cost story is measured on the path production code actually runs.
//!
//! Output is bit-identical to the unfused
//! `PartialDecoder::decode_all` → `FeatureExtractor::fingerprint_sequence`
//! composition — same cell ids, same frame indices — which the property
//! tests in `tests/` assert byte for byte.

use crate::extract::{FeatureExtractor, FingerprintScratch};
use crate::CellId;
use vdsms_codec::{DcFrame, PartialDecoder, Result, StreamHeader};

/// Streaming adapter yielding `(frame_index, cell_id)` directly from
/// bitstream bytes. Holds all pooled state (DC frame, region plan,
/// feature buffers); steady-state pulls are allocation-free.
#[derive(Debug)]
pub struct FingerprintStream<'a> {
    decoder: PartialDecoder<'a>,
    extractor: FeatureExtractor,
    frame: DcFrame,
    scratch: FingerprintScratch,
}

impl<'a> FingerprintStream<'a> {
    /// Open a bitstream for fused ingestion, parsing its header.
    pub fn new(bytes: &'a [u8], extractor: FeatureExtractor) -> Result<FingerprintStream<'a>> {
        let scratch = extractor.scratch();
        Ok(FingerprintStream {
            decoder: PartialDecoder::new(bytes)?,
            extractor,
            frame: DcFrame::empty(),
            scratch,
        })
    }

    /// The stream's header.
    pub fn header(&self) -> &StreamHeader {
        self.decoder.header()
    }

    /// Key frames per second implied by the stream's fps and GOP length.
    pub fn key_frame_rate(&self) -> f64 {
        self.decoder.key_frame_rate()
    }

    /// The extractor this stream fingerprints with.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// Restart ingestion on a (possibly different) bitstream while
    /// keeping every pooled buffer — the allocation-free way to chain
    /// segments or re-ingest a stream.
    pub fn reopen(&mut self, bytes: &'a [u8]) -> Result<()> {
        self.decoder = PartialDecoder::new(bytes)?;
        Ok(())
    }

    /// Decode and fingerprint the next key frame, or `Ok(None)` at end of
    /// stream. P-frames are skipped in O(1); the returned index counts
    /// them, so detections report true stream positions.
    // vdsms-lint: entry
    pub fn next_fingerprint(&mut self) -> Result<Option<(u64, CellId)>> {
        if self.decoder.next_dc_frame_into(&mut self.frame)? {
            let cell = self.extractor.fingerprint_into(&mut self.scratch, &self.frame);
            Ok(Some((self.frame.frame_index, cell)))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::FeatureConfig;
    use vdsms_codec::{Encoder, EncoderConfig};
    use vdsms_video::source::{ClipGenerator, SourceSpec};
    use vdsms_video::{Clip, Fps};

    fn test_clip(seed: u64, seconds: f64) -> Clip {
        let spec = SourceSpec {
            width: 176,
            height: 120,
            fps: Fps::integer(10),
            seed,
            min_scene_s: 1.0,
            max_scene_s: 2.0,
            motifs: None,
        };
        ClipGenerator::new(spec).clip(seconds)
    }

    #[test]
    fn fused_stream_matches_unfused_composition() {
        let clip = test_clip(21, 5.0);
        let bytes =
            Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 80, motion_search: true });
        let ex = FeatureExtractor::new(FeatureConfig::default());

        let dcs = PartialDecoder::new(&bytes).unwrap().decode_all().unwrap();
        let expected: Vec<(u64, CellId)> = dcs
            .iter()
            .map(|d| d.frame_index)
            .zip(ex.fingerprint_sequence(&dcs))
            .collect();

        let mut fs = FingerprintStream::new(&bytes, ex).unwrap();
        let mut got = Vec::new();
        while let Some(pair) = fs.next_fingerprint().unwrap() {
            got.push(pair);
        }
        assert_eq!(got, expected, "fused path must be bit-identical");
        assert_eq!(fs.next_fingerprint().unwrap(), None, "exhausted stream stays exhausted");
    }

    #[test]
    fn reopen_replays_the_same_fingerprints() {
        let clip = test_clip(22, 3.0);
        let bytes =
            Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 70, motion_search: true });
        let ex = FeatureExtractor::new(FeatureConfig::default());
        let mut fs = FingerprintStream::new(&bytes, ex).unwrap();
        let mut first = Vec::new();
        while let Some(pair) = fs.next_fingerprint().unwrap() {
            first.push(pair);
        }
        fs.reopen(&bytes).unwrap();
        let mut second = Vec::new();
        while let Some(pair) = fs.next_fingerprint().unwrap() {
            second.push(pair);
        }
        assert_eq!(first, second);
        assert!(!first.is_empty());
    }

    #[test]
    fn truncated_stream_surfaces_an_error() {
        let clip = test_clip(23, 2.0);
        let bytes = Encoder::encode_clip(&clip, EncoderConfig::default());
        let cut = &bytes[..bytes.len() - bytes.len() / 3];
        let ex = FeatureExtractor::new(FeatureConfig::default());
        let mut fs = FingerprintStream::new(cut, ex).unwrap();
        let result = loop {
            match fs.next_fingerprint() {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        assert!(result.is_err(), "truncation must surface as an error, got {result:?}");
    }
}
