// Fixture (crate `vdsms-a` of the reachability trio): the annotated
// entry point. Calls into crate `vdsms-b`.
// vdsms-lint: entry
pub fn ingest(x: Option<u32>) -> u32 {
    relay(x)
}
