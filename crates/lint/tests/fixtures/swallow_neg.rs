// no-swallowed-error negative fixture: handled errors, non-Result
// discards and `?` propagation — all silent.

use std::sync::mpsc::Sender;

fn refresh_index() -> Result<(), String> {
    Ok(())
}

fn tally() -> u32 {
    0
}

// Explicit handling: the error path is inspected, not swallowed.
pub fn handles(tx: &Sender<u32>) {
    if tx.send(1).is_err() {
        return;
    }
    if refresh_index().is_err() {
        return;
    }
}

// `let _ =` on a callee that does not return Result is fine.
pub fn discards_plain() {
    let _ = tally();
}

// `?` is propagation, not a discard.
pub fn propagates() -> Result<(), String> {
    let _ = refresh_index()?;
    Ok(())
}
