#!/usr/bin/env bash
# Local CI: offline build, full test suite, lints. Mirrors what the
# tier-1 gate runs, plus clippy.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== benches compile =="
cargo bench --no-run -q

echo "== static-analysis gate (vdsms-lint) =="
cargo run -p vdsms-lint --release

echo "== zero-alloc steady state (release) =="
cargo test --release -q --test alloc_steady_state

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "== rustdoc =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "CI OK"
