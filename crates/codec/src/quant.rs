//! Quantization with a JPEG-style quality knob.
//!
//! Re-compressing a copy at a different quality slightly perturbs every
//! reconstructed DC coefficient — this is precisely the paper's
//! "different compressed settings" perturbation that the grid–pyramid
//! partition must absorb (Section III-A).

use crate::dct::BLOCK_AREA;

/// The standard JPEG luminance quantization matrix (Annex K), row-major.
#[rustfmt::skip]
pub const BASE_LUMA_QTABLE: [u16; BLOCK_AREA] = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68,109,103, 77,
    24, 35, 55, 64, 81,104,113, 92,
    49, 64, 78, 87,103,121,120,101,
    72, 92, 95, 98,112,100,103, 99,
];

/// A quantizer derived from a quality setting in `[1, 100]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quantizer {
    quality: u8,
    table: [u16; BLOCK_AREA],
}

impl Quantizer {
    /// Build the quantizer for a quality level (1 = worst, 100 = best).
    ///
    /// Uses the libjpeg quality-scaling convention.
    ///
    /// # Panics
    /// Panics if `quality` is outside `[1, 100]`.
    pub fn new(quality: u8) -> Quantizer {
        assert!((1..=100).contains(&quality), "quality must be in [1, 100]");
        let scale: u32 = if quality < 50 {
            5000 / u32::from(quality)
        } else {
            200 - 2 * u32::from(quality)
        };
        let mut table = [0u16; BLOCK_AREA];
        for (t, &base) in table.iter_mut().zip(&BASE_LUMA_QTABLE) {
            let q = (u32::from(base) * scale + 50) / 100;
            *t = q.clamp(1, 255) as u16;
        }
        Quantizer { quality, table }
    }

    /// The quality this quantizer was built from.
    pub fn quality(&self) -> u8 {
        self.quality
    }

    /// The effective quantization step table.
    pub fn table(&self) -> &[u16; BLOCK_AREA] {
        &self.table
    }

    /// Quantize a coefficient block (round-to-nearest).
    pub fn quantize(&self, coeffs: &[f32; BLOCK_AREA]) -> [i32; BLOCK_AREA] {
        let mut out = [0i32; BLOCK_AREA];
        for i in 0..BLOCK_AREA {
            out[i] = (coeffs[i] / f32::from(self.table[i])).round() as i32;
        }
        out
    }

    /// Dequantize a level block back to coefficients.
    pub fn dequantize(&self, levels: &[i32; BLOCK_AREA]) -> [f32; BLOCK_AREA] {
        let mut out = [0.0f32; BLOCK_AREA];
        for i in 0..BLOCK_AREA {
            out[i] = levels[i] as f32 * f32::from(self.table[i]);
        }
        out
    }

    /// Dequantize a single DC level (zigzag position 0). This is the *only*
    /// arithmetic the partial decoder performs per block.
    pub fn dequantize_dc(&self, level: i32) -> f32 {
        level as f32 * f32::from(self.table[0])
    }

    /// The DC quantization step as an f32 multiplier
    /// (`dequantize_dc(level) == level as f32 * dc_step()`), hoistable
    /// out of the partial decoder's per-block loop.
    pub fn dc_step(&self) -> f32 {
        f32::from(self.table[0])
    }
}

/// Memoizes [`Quantizer`] construction across frames.
///
/// A stream keeps one quality for long runs (usually its whole length),
/// so the decoders would otherwise rebuild the same 64-entry table for
/// every frame. The cache holds the most recently used quantizer and
/// rebuilds only when the requested quality changes — allocation-free
/// and branch-predictable on the steady-state ingestion path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizerCache {
    last: Quantizer,
}

impl Default for QuantizerCache {
    fn default() -> QuantizerCache {
        QuantizerCache::new()
    }
}

impl QuantizerCache {
    /// A cache primed with an arbitrary quality (the first real request
    /// replaces it unless it happens to match).
    pub fn new() -> QuantizerCache {
        QuantizerCache { last: Quantizer::new(50) }
    }

    /// The quantizer for `quality`, rebuilt only if it differs from the
    /// previous request.
    ///
    /// # Panics
    /// Panics if `quality` is outside `[1, 100]` (as [`Quantizer::new`]).
    pub fn for_quality(&mut self, quality: u8) -> &Quantizer {
        if self.last.quality != quality {
            self.last = Quantizer::new(quality);
        }
        &self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_100_steps_are_small() {
        let q = Quantizer::new(100);
        assert!(q.table().iter().all(|&s| s <= 2));
    }

    #[test]
    fn quality_ordering_monotone_in_dc_step() {
        let steps: Vec<u16> = [10u8, 30, 50, 70, 90]
            .iter()
            .map(|&ql| Quantizer::new(ql).table()[0])
            .collect();
        for pair in steps.windows(2) {
            assert!(pair[0] >= pair[1], "higher quality must not coarsen steps");
        }
    }

    #[test]
    fn quantize_dequantize_error_bounded_by_half_step() {
        let q = Quantizer::new(75);
        let mut coeffs = [0.0f32; BLOCK_AREA];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = (i as f32 * 13.7) - 400.0;
        }
        let deq = q.dequantize(&q.quantize(&coeffs));
        for i in 0..BLOCK_AREA {
            let half_step = f32::from(q.table()[i]) / 2.0;
            assert!(
                (coeffs[i] - deq[i]).abs() <= half_step + 1e-3,
                "error exceeds half step at {i}"
            );
        }
    }

    #[test]
    fn dequantize_dc_matches_full_dequantize() {
        let q = Quantizer::new(40);
        let mut levels = [0i32; BLOCK_AREA];
        levels[0] = -17;
        assert_eq!(q.dequantize(&levels)[0], q.dequantize_dc(-17));
    }

    #[test]
    #[should_panic(expected = "quality must be in")]
    fn quality_zero_rejected() {
        let _ = Quantizer::new(0);
    }

    #[test]
    fn cache_returns_same_tables_as_fresh_construction() {
        let mut cache = QuantizerCache::new();
        for ql in [80u8, 80, 20, 100, 20, 50] {
            assert_eq!(cache.for_quality(ql), &Quantizer::new(ql));
            assert_eq!(cache.for_quality(ql).dc_step(), Quantizer::new(ql).dequantize_dc(1));
        }
    }

    #[test]
    fn steps_never_zero() {
        for ql in 1..=100u8 {
            let q = Quantizer::new(ql);
            assert!(q.table().iter().all(|&s| s >= 1));
        }
    }
}
