// loop-progress positive fixture: hot loops whose bodies never advance
// a cursor, drain a queue or bump a counter.

// vdsms-lint: entry
pub fn pump(frames: &[u8]) {
    let budget = 10;
    while budget > 0 {
        inspect(frames);
    }
}

fn inspect(_frames: &[u8]) {}

// Scoped entry: only the loop-progress hot set is seeded.
// vdsms-lint: entry(loop-progress)
pub fn recover(mut damaged: bool) {
    loop {
        if damaged {
            damaged = false;
        }
    }
}
