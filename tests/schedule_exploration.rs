//! Deterministic schedule exploration of the parallel fleet's
//! concurrency protocol (loom-lite; see `parking_lot::schedule`).
//!
//! Every lock and channel operation in the fleet passes through a
//! seeded yield point. Each scenario below runs once per seed; the
//! controller derives a different interleaving perturbation from every
//! seed, so a seed range walks the protocol through that many distinct
//! schedules. A failing seed panics with the seed number and the full
//! decision trace, and re-running the same seed replays the same
//! decisions — the failure is a reproducible artifact, not a flake.
//!
//! Model-checked invariants:
//! * **subscribe-during-push quiesce** — a catalogue change after
//!   `push_batch_async` is a barrier: `take_detections` immediately
//!   after it holds every detection of the queued frames (bit-identical
//!   to the serial fleet), and nothing matches the new query.
//! * **crash → restart journal replay** — a shard panic between batches
//!   restarts the worker and re-arms partial windows from the journal;
//!   the detection stream and window counts stay bit-identical to an
//!   uninterrupted serial run.
//! * **drain on shutdown** — `finish_all` after async pushes flushes
//!   every window, `take_detections` drains a complete sink, and `Drop`
//!   terminates (bounded join) under every explored schedule.
//!
//! The harness proves it has teeth by reverting the quiesce barrier on
//! demand (`dangerously_skip_install_acks`, the historical bug shape)
//! and asserting the same seed range *finds* the incompleteness.
//!
//! Seed count per scenario: `VDSMS_SCHED_SEEDS` (default 150; `ci.sh`
//! pins 1000, ≈3000 seeded schedules across the invariant scenarios).

use parking_lot::schedule;
use vdsms::core::{DetectorConfig, Fleet, ParallelFleet, Query, QueryId, StreamDetection, StreamId};
use vdsms::sketch::MinHashFamily;

const K: usize = 64;
const W: usize = 4; // window_keyframes
/// Preemption budget per seeded run (the loom/CHESS small-bound
/// insight: ordering bugs manifest within a handful of preemptions).
const MAX_PREEMPTIONS: u32 = 64;

fn seed_count() -> u64 {
    std::env::var("VDSMS_SCHED_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(150)
}

fn cfg() -> DetectorConfig {
    DetectorConfig { k: K, window_keyframes: W, ..Default::default() }
}

fn query(id: QueryId, base: u64) -> Query {
    let family = MinHashFamily::new(K, vdsms::core::config::DEFAULT_HASH_SEED);
    let ids: Vec<u64> = (base..base + 24).collect();
    Query::from_cell_ids(id, &family, &ids)
}

/// Two interleaved streams, each airing `query(s + 1, 1000 * (s + 1))`
/// content at frames 10..34 of a 40-frame broadcast.
fn workload() -> Vec<(StreamId, u64, u64)> {
    let mut batch = Vec::new();
    for i in 0..40u64 {
        for s in 0..2u32 {
            let id = if (10..34).contains(&i) {
                1000 * (u64::from(s) + 1) + (i - 10) % 24
            } else {
                900_000 + u64::from(s) * 1000 + i
            };
            batch.push((s, i, id));
        }
    }
    batch
}

fn sorted_key(mut dets: Vec<StreamDetection>) -> Vec<(StreamId, u32, u64, u64)> {
    dets.sort_by_key(|d| {
        (d.stream_id, d.detection.query_id, d.detection.start_frame, d.detection.end_frame)
    });
    dets.iter()
        .map(|d| (d.stream_id, d.detection.query_id, d.detection.start_frame, d.detection.end_frame))
        .collect()
}

/// Run `scenario` once per seed under the schedule controller; panic
/// with the seed and the full decision trace on the first failure.
fn explore(name: &str, scenario: impl Fn() -> Result<(), String>) {
    for seed in 0..seed_count() {
        let guard = schedule::begin(seed, MAX_PREEMPTIONS);
        let outcome = scenario();
        let trace = guard.finish();
        if let Err(why) = outcome {
            panic!(
                "scenario `{name}` failed at seed {seed}: {why}\n\
                 replay: VDSMS_SCHED_SEEDS={n} cargo test --test schedule_exploration\n\
                 schedule trace ({len} steps):\n{trace}",
                n = seed + 1,
                len = trace.len(),
                trace = schedule::format_trace(&trace),
            );
        }
    }
}

/// The serial fleet's detections for [`workload`] under query 1 + 2
/// subscriptions — the reference every parallel schedule must match.
/// `flush` controls whether partial windows are flushed at the end.
fn serial_reference(flush: bool) -> Vec<(StreamId, u32, u64, u64)> {
    let mut fleet = Fleet::new(cfg());
    for s in 0..2 {
        fleet.add_stream(s).unwrap();
    }
    fleet.subscribe(query(1, 1000));
    fleet.subscribe(query(2, 2000));
    let mut dets = fleet.push_batch(&workload()).unwrap();
    if flush {
        dets.extend(fleet.finish_all());
    }
    sorted_key(dets)
}

/// Build a 2-shard fleet monitoring both workload streams with both
/// workload queries subscribed.
fn parallel_fleet() -> ParallelFleet {
    let mut fleet = ParallelFleet::new(cfg(), 2);
    for s in 0..2 {
        fleet.add_stream(s).unwrap();
    }
    fleet.subscribe(query(1, 1000)).unwrap();
    fleet.subscribe(query(2, 2000)).unwrap();
    fleet
}

/// One run of the subscribe-during-push scenario; factored out so the
/// barrier-revert test below can drive the identical body with the
/// barrier disarmed.
fn subscribe_scenario(reference: &[(StreamId, u32, u64, u64)], skip_acks: bool) -> Result<(), String> {
    let mut fleet = parallel_fleet();
    fleet.dangerously_skip_install_acks(skip_acks);
    for chunk in workload().chunks(13) {
        fleet.push_batch_async(chunk).map_err(|e| format!("push: {e:?}"))?;
    }
    // The catalogue change is the barrier under test: it must not
    // return until every shard drained the frames queued above.
    fleet.subscribe(query(99, 700_000)).map_err(|e| format!("subscribe: {e:?}"))?;
    let got = fleet.take_detections();
    if got.iter().any(|d| d.detection.query_id == 99) {
        return Err("frame queued before subscribe matched the new query".into());
    }
    let got = sorted_key(got);
    if got != reference {
        return Err(format!(
            "take_detections after the subscribe barrier is incomplete or wrong:\n\
             got      {got:?}\nexpected {reference:?}"
        ));
    }
    Ok(())
}

#[test]
fn subscribe_during_push_is_a_quiesce_barrier_under_every_schedule() {
    let reference = serial_reference(false);
    assert!(!reference.is_empty(), "workload must produce detections");
    explore("subscribe-during-push quiesce", || subscribe_scenario(&reference, false));
}

#[test]
fn crash_restart_replays_the_journal_under_every_schedule() {
    let reference = serial_reference(true);
    let serial_windows: u64 = {
        let mut fleet = Fleet::new(cfg());
        for s in 0..2 {
            fleet.add_stream(s).unwrap();
        }
        fleet.subscribe(query(1, 1000));
        fleet.push_batch(&workload()).unwrap();
        (0..2).map(|s| fleet.stats(s).unwrap().windows).sum()
    };
    let batch = workload();
    // Frames 0..2 of both streams: a half-built window on every stream,
    // exactly the state the journal must re-arm after the crash.
    let split = 2 * 2;
    explore("crash-restart journal replay", || {
        let mut fleet = parallel_fleet();
        let mut dets = fleet.push_batch(&batch[..split]).map_err(|e| format!("push: {e:?}"))?;
        fleet.inject_shard_panic(0);
        fleet.inject_shard_panic(1);
        fleet.quiesce().map_err(|e| format!("quiesce: {e:?}"))?; // observes deaths, restarts
        let total = fleet.total_stats();
        if total.shard_restarts != 2 {
            return Err(format!("expected 2 shard restarts, saw {}", total.shard_restarts));
        }
        dets.extend(fleet.push_batch(&batch[split..]).map_err(|e| format!("push: {e:?}"))?);
        dets.extend(fleet.finish_all().map_err(|e| format!("finish: {e:?}"))?);
        if sorted_key(dets) != reference {
            return Err("detections diverged from the uninterrupted serial run".into());
        }
        // The replayed partial windows must keep window phase: the total
        // completed-window count matches the serial run's.
        let windows: u64 = (0..2).map(|s| fleet.stats(s).map_or(0, |st| st.windows)).sum();
        if windows != serial_windows {
            return Err(format!(
                "journal replay lost window phase: {windows} windows vs serial {serial_windows}"
            ));
        }
        Ok(())
    });
}

#[test]
fn shutdown_drains_completely_under_every_schedule() {
    let reference = serial_reference(true);
    explore("drain on shutdown", || {
        let mut fleet = parallel_fleet();
        for chunk in workload().chunks(7) {
            fleet.push_batch_async(chunk).map_err(|e| format!("push: {e:?}"))?;
        }
        // `finish_all` is a barrier: async batches complete first, then
        // every partial window flushes.
        let mut dets = fleet.finish_all().map_err(|e| format!("finish: {e:?}"))?;
        dets.extend(fleet.take_detections());
        if sorted_key(dets) != reference {
            return Err("drained detections diverged from the serial run".into());
        }
        drop(fleet); // bounded, deterministic shutdown: must terminate
        Ok(())
    });
}

/// The harness must have teeth: with the quiesce barrier deliberately
/// disarmed (the historical bug shape — `subscribe` returning before
/// the shards acknowledged the install), the same seed range must
/// *find* an interleaving where `take_detections` misses detections.
#[test]
fn exploration_catches_a_reverted_quiesce_barrier() {
    let reference = serial_reference(false);
    assert!(!reference.is_empty(), "workload must produce detections");
    let mut failing_seed = None;
    for seed in 0..seed_count() {
        let guard = schedule::begin(seed, MAX_PREEMPTIONS);
        let outcome = subscribe_scenario(&reference, true);
        let trace = guard.finish();
        if outcome.is_err() {
            failing_seed = Some((seed, trace.len()));
            break;
        }
    }
    let (seed, steps) = failing_seed.expect(
        "no explored schedule exposed the disarmed barrier — the harness has lost its teeth",
    );
    println!(
        "disarmed barrier caught at seed {seed} after a {steps}-step schedule \
         (incomplete take_detections)"
    );
}
