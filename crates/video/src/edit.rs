//! Tamper / editing pipeline.
//!
//! Section VI of the paper constructs the `VS2` stream by editing the 200
//! short videos: "we alter 20–50 % of the color as well as the brightness,
//! add noises and change the resolutions of the short videos, re-compress
//! them using different frame rate (PAL: 352×288, 25 fps). We partition the
//! edited short videos into segments, reorder these segments without
//! affecting the contents."
//!
//! Every one of those operations is implemented here as an [`Edit`], and
//! [`EditPipeline::vs2_standard`] composes them with the paper's parameter
//! ranges. (Re-compression itself lives in `vdsms-codec`; this module
//! performs the pixel/temporal-domain edits.)

use crate::source::{ClipGenerator, SourceSpec};
use crate::{Clip, Fps, Frame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_normal::sample_gaussian;

/// A tiny Box–Muller Gaussian sampler so we do not need `rand_distr`.
mod rand_distr_normal {
    use rand::Rng;

    /// Sample one standard-normal value via Box–Muller.
    pub fn sample_gaussian<R: Rng>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// One editing operation on a clip.
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// Multiply luma by `gain` and add `offset` (brightness / color / contrast
    /// alteration). `gain = 1.3` models a "+30 % color" edit.
    GainOffset {
        /// Multiplicative luma gain.
        gain: f64,
        /// Additive luma offset.
        offset: f64,
    },
    /// Add zero-mean Gaussian noise with standard deviation `sigma`.
    Noise {
        /// Noise standard deviation in luma units.
        sigma: f64,
        /// Seed for the noise stream.
        seed: u64,
    },
    /// Resample to a new resolution (bilinear).
    Resize {
        /// Target width.
        width: u32,
        /// Target height.
        height: u32,
    },
    /// Temporally resample to a new frame rate (nearest-frame), e.g.
    /// NTSC 29.97 fps → PAL 25 fps.
    ResampleFps {
        /// Target frame rate.
        target: Fps,
    },
    /// Split the clip into `segments` near-equal pieces and permute them.
    /// This is the paper's temporal re-ordering attack: content preserved,
    /// temporal order destroyed.
    SegmentReorder {
        /// Number of segments.
        segments: usize,
        /// Seed of the permutation.
        seed: u64,
    },
    /// Playback-speed change by frame resampling at an unchanged frame
    /// rate: factor `num/den` (`3/2` plays 1.5× faster). The edited clip
    /// has `round(len·den/num)` frames, so a sped-up copy occupies *less*
    /// stream time — the time warp the engine's λ bound exists for.
    /// Ground truth must be mapped through it ([`Edit::map_span`]).
    Speed {
        /// Speed numerator (output plays `num/den` times faster).
        num: u32,
        /// Speed denominator.
        den: u32,
    },
    /// Periodic frame drops: the first `drop` frames of every
    /// `period`-frame cycle are removed (a stressed transcoder or a
    /// cadence-removal pass). Time-warping: the clip shortens by
    /// `drop/period`.
    DropPeriodic {
        /// Cycle length in frames.
        period: usize,
        /// Frames dropped at the start of each cycle (must be < `period`).
        drop: usize,
    },
    /// Seeded bursty frame drops: each surviving frame starts a burst of
    /// `burst` consecutive dropped frames with probability `rate`
    /// (network loss / splice damage). Time-warping and seeded.
    DropBursty {
        /// Per-frame probability of starting a drop burst.
        rate: f64,
        /// Frames dropped per burst (≥ 1).
        burst: usize,
        /// Seed of the drop pattern.
        seed: u64,
    },
    /// Clip-in-clip embedding: the input becomes a segment inside a longer
    /// seeded distractor video — `lead_s` seconds of foreign content
    /// before it and `trail_s` after. The copied content's span inside the
    /// output is `[lead, lead + len)` ([`Edit::map_span`]).
    ClipInClip {
        /// Foreign content before the clip, in seconds.
        lead_s: f64,
        /// Foreign content after the clip, in seconds.
        trail_s: f64,
        /// Seed of the distractor generator.
        seed: u64,
    },
    /// Center region crop: keep the middle `keep_w × keep_h` fraction of
    /// the picture and scale it back to the original geometry (a zoom /
    /// reframing attack). Pixel-domain only; the timeline is unchanged.
    Crop {
        /// Kept width fraction in `(0, 1]`.
        keep_w: f64,
        /// Kept height fraction in `(0, 1]`.
        keep_h: f64,
    },
    /// Letterbox / pillarbox: the content is downscaled and centered on a
    /// dark canvas, with `bar_x` of the width on each side and `bar_y` of
    /// the height on top and bottom turned into bars. `bar_y > 0` is a
    /// letterbox, `bar_x > 0` a pillarbox.
    Letterbox {
        /// Bar fraction per side, horizontally, in `[0, 0.45]`.
        bar_x: f64,
        /// Bar fraction per side, vertically, in `[0, 0.45]`.
        bar_y: f64,
    },
}

/// Luma of the letterbox bars (broadcast black, not signal zero).
const BAR_LUMA: u8 = 16;

/// The seeded segment permutation of [`Edit::SegmentReorder`]:
/// Fisher–Yates, re-drawn in the unlikely identity case so the edit
/// always actually reorders (for `n ≥ 2`).
fn reorder_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    loop {
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        if n < 2 || order.iter().enumerate().any(|(i, &p)| i != p) {
            break;
        }
    }
    order
}

/// Near-equal segment bounds `(start, len)`, exactly as
/// [`Clip::split_segments`] cuts them.
fn segment_bounds(in_len: usize, n: usize) -> Vec<(usize, usize)> {
    let base = in_len / n;
    let extra = in_len % n;
    let mut bounds = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let len = base + usize::from(i < extra);
        bounds.push((start, len));
        start += len;
    }
    bounds
}

impl Edit {
    /// Apply this edit to a clip, producing the edited clip.
    pub fn apply(&self, clip: &Clip) -> Clip {
        match *self {
            Edit::GainOffset { gain, offset } => {
                let frames = clip
                    .frames()
                    .iter()
                    .map(|f| {
                        let data = f
                            .samples()
                            .iter()
                            .map(|&v| (f64::from(v) * gain + offset).round().clamp(0.0, 255.0) as u8)
                            .collect();
                        Frame::from_raw(f.width(), f.height(), data)
                    })
                    .collect();
                Clip::new(frames, clip.fps())
            }
            Edit::Noise { sigma, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let frames = clip
                    .frames()
                    .iter()
                    .map(|f| {
                        let data = f
                            .samples()
                            .iter()
                            .map(|&v| {
                                let n = sample_gaussian(&mut rng) * sigma;
                                (f64::from(v) + n).round().clamp(0.0, 255.0) as u8
                            })
                            .collect();
                        Frame::from_raw(f.width(), f.height(), data)
                    })
                    .collect();
                Clip::new(frames, clip.fps())
            }
            Edit::Resize { width, height } => {
                let frames = clip.frames().iter().map(|f| f.resize(width, height)).collect();
                Clip::new(frames, clip.fps())
            }
            // Pure timeline-resampling edits: assemble output frames from
            // the shared source map, so `apply` and `map_span` cannot
            // disagree about where content lands.
            Edit::ResampleFps { .. }
            | Edit::SegmentReorder { .. }
            | Edit::Speed { .. }
            | Edit::DropPeriodic { .. }
            | Edit::DropBursty { .. } => {
                let sources = self
                    .source_map(clip.len(), clip.fps())
                    // vdsms-lint: allow(no-panic-hot-path) reason="source_map returns Some for every variant this match arm covers; a None is an edit-taxonomy bug, not an input condition"
                    .expect("timeline edits always have a source map");
                let frames = sources
                    .iter()
                    .map(|s| {
                        // vdsms-lint: allow(no-panic-hot-path) reason="resampling source maps only reference source frames (no ClipInClip foreign slots); a None is an edit-taxonomy bug"
                        let src = s.expect("resampling edits have no foreign frames");
                        // vdsms-lint: allow(no-panic-hot-path) reason="source_map indices are produced modulo clip length by this same impl; out of range is an edit-taxonomy bug"
                        clip.frames()[src].clone()
                    })
                    .collect();
                Clip::new(frames, self.output_fps(clip.fps()))
            }
            Edit::ClipInClip { lead_s, trail_s, seed } => {
                let lead = clip.fps().frames_in(lead_s.max(0.0));
                let trail = clip.fps().frames_in(trail_s.max(0.0));
                let distractor = distractor_frames(clip, lead + trail, seed);
                let mut frames = Vec::with_capacity(lead + clip.len() + trail);
                frames.extend_from_slice(&distractor[..lead]);
                frames.extend_from_slice(clip.frames());
                frames.extend_from_slice(&distractor[lead..]);
                Clip::new(frames, clip.fps())
            }
            Edit::Crop { keep_w, keep_h } => {
                assert!(
                    (0.0..=1.0).contains(&keep_w) && keep_w > 0.0,
                    "keep_w must be in (0, 1]"
                );
                assert!(
                    (0.0..=1.0).contains(&keep_h) && keep_h > 0.0,
                    "keep_h must be in (0, 1]"
                );
                let (w, h) = (clip.width(), clip.height());
                let cw = ((f64::from(w) * keep_w).round() as u32).clamp(1, w);
                let ch = ((f64::from(h) * keep_h).round() as u32).clamp(1, h);
                let x0 = (w - cw) / 2;
                let y0 = (h - ch) / 2;
                let frames = clip
                    .frames()
                    .iter()
                    .map(|f| f.crop(x0, y0, cw, ch).resize(w, h))
                    .collect();
                Clip::new(frames, clip.fps())
            }
            Edit::Letterbox { bar_x, bar_y } => {
                assert!(
                    (0.0..=0.45).contains(&bar_x) && (0.0..=0.45).contains(&bar_y),
                    "bar fractions must be in [0, 0.45]"
                );
                let (w, h) = (clip.width(), clip.height());
                let inner_w = ((f64::from(w) * (1.0 - 2.0 * bar_x)).round() as u32).clamp(1, w);
                let inner_h = ((f64::from(h) * (1.0 - 2.0 * bar_y)).round() as u32).clamp(1, h);
                let x0 = (w - inner_w) / 2;
                let y0 = (h - inner_h) / 2;
                let frames = clip
                    .frames()
                    .iter()
                    .map(|f| {
                        let mut canvas = Frame::filled(w, h, BAR_LUMA);
                        canvas.blit(&f.resize(inner_w, inner_h), x0, y0);
                        canvas
                    })
                    .collect();
                Clip::new(frames, clip.fps())
            }
        }
    }

    /// The timeline of this edit, as a map from output frame index to its
    /// source: `Some(i)` takes input frame `i`, `None` is foreign content
    /// (the clip-in-clip distractor). `None` overall means the edit does
    /// not touch the timeline (pixel-domain edits).
    ///
    /// This single map drives both [`Edit::apply`]'s frame assembly and
    /// [`Edit::map_span`]'s ground-truth remapping, so the two cannot
    /// diverge.
    fn source_map(&self, in_len: usize, fps: Fps) -> Option<Vec<Option<usize>>> {
        assert!(in_len >= 1, "source map of an empty clip");
        match *self {
            Edit::GainOffset { .. }
            | Edit::Noise { .. }
            | Edit::Resize { .. }
            | Edit::Crop { .. }
            | Edit::Letterbox { .. } => None,
            Edit::ResampleFps { target } => {
                let n_out = target.frames_in(fps.seconds_of(in_len)).max(1);
                let ratio = in_len as f64 / n_out as f64;
                Some(
                    (0..n_out)
                        .map(|i| Some((((i as f64 + 0.5) * ratio) as usize).min(in_len - 1)))
                        .collect(),
                )
            }
            Edit::Speed { num, den } => {
                assert!(num >= 1 && den >= 1, "speed factor must be positive");
                let factor = f64::from(num) / f64::from(den);
                let n_out = ((in_len as f64 / factor).round() as usize).max(1);
                Some(
                    (0..n_out)
                        .map(|i| Some((((i as f64 + 0.5) * factor) as usize).min(in_len - 1)))
                        .collect(),
                )
            }
            Edit::DropPeriodic { period, drop } => {
                assert!(period >= 1, "period must be >= 1");
                assert!(drop < period, "cannot drop a whole period");
                let kept: Vec<Option<usize>> =
                    (0..in_len).filter(|i| i % period >= drop).map(Some).collect();
                Some(if kept.is_empty() { vec![Some(0)] } else { kept })
            }
            Edit::DropBursty { rate, burst, seed } => {
                assert!((0.0..=1.0).contains(&rate), "drop rate must be in [0, 1]");
                assert!(burst >= 1, "burst must be >= 1");
                let mut rng = StdRng::seed_from_u64(seed);
                let mut kept = Vec::with_capacity(in_len);
                let mut dropping = 0usize;
                for i in 0..in_len {
                    if dropping > 0 {
                        dropping -= 1;
                    } else if rate > 0.0 && rng.gen_bool(rate) {
                        dropping = burst - 1;
                    } else {
                        kept.push(Some(i));
                    }
                }
                if kept.is_empty() {
                    kept.push(Some(0));
                }
                Some(kept)
            }
            Edit::SegmentReorder { segments, seed } => {
                let n = segments.min(in_len).max(1);
                let bounds = segment_bounds(in_len, n);
                let order = reorder_permutation(n, seed);
                let mut sources = Vec::with_capacity(in_len);
                for &p in &order {
                    let (start, len) = bounds[p];
                    sources.extend((start..start + len).map(Some));
                }
                Some(sources)
            }
            Edit::ClipInClip { lead_s, trail_s, seed: _ } => {
                let lead = fps.frames_in(lead_s.max(0.0));
                let trail = fps.frames_in(trail_s.max(0.0));
                let mut sources = Vec::with_capacity(lead + in_len + trail);
                sources.extend(std::iter::repeat_n(None, lead));
                sources.extend((0..in_len).map(Some));
                sources.extend(std::iter::repeat_n(None, trail));
                Some(sources)
            }
        }
    }

    /// Frame rate of the edited clip.
    pub fn output_fps(&self, fps: Fps) -> Fps {
        match *self {
            Edit::ResampleFps { target } => target,
            _ => fps,
        }
    }

    /// Length in frames of the edited clip, for an input of `in_len`
    /// frames at `fps`.
    pub fn output_len(&self, in_len: usize, fps: Fps) -> usize {
        match self.source_map(in_len, fps) {
            Some(sources) => sources.len(),
            None => in_len,
        }
    }

    /// Map the input-frame span `[span.0, span.1)` through this edit's
    /// timeline: the smallest output span containing every output frame
    /// whose source lies in the input span (for [`Edit::SegmentReorder`]
    /// the scattered content is covered by its convex hull). Returns an
    /// empty span `(0, 0)` when every source frame was dropped.
    ///
    /// This is the ground-truth remapping of the paper's `Q_i.begin /
    /// Q_i.end` under time-warping edits: a sped-up airing occupies fewer
    /// output frames, and the scoring rule must use the *warped* span.
    pub fn map_span(&self, in_len: usize, fps: Fps, span: (u64, u64)) -> (u64, u64) {
        match self.source_map(in_len, fps) {
            None => span,
            Some(sources) => {
                let mut lo = None;
                let mut hi = None;
                for (i, s) in sources.iter().enumerate() {
                    if let Some(src) = s {
                        let src = *src as u64;
                        if src >= span.0 && src < span.1 {
                            if lo.is_none() {
                                lo = Some(i as u64);
                            }
                            hi = Some(i as u64 + 1);
                        }
                    }
                }
                match (lo, hi) {
                    (Some(l), Some(h)) => (l, h),
                    _ => (0, 0),
                }
            }
        }
    }
}

/// `n` frames of seeded foreign content at the clip's geometry, for the
/// clip-in-clip distractor.
fn distractor_frames(clip: &Clip, n: usize, seed: u64) -> Vec<Frame> {
    if n == 0 {
        return Vec::new();
    }
    let spec = SourceSpec {
        width: clip.width(),
        height: clip.height(),
        fps: clip.fps(),
        seed,
        min_scene_s: 1.5,
        max_scene_s: 5.0,
        motifs: None,
    };
    ClipGenerator::new(spec).take(n).collect()
}

/// Result of mapping a frame span through a pipeline's timeline edits
/// ([`EditPipeline::map_span`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanMap {
    /// Length of the fully edited clip, in frames.
    pub len: usize,
    /// Frame rate of the fully edited clip.
    pub fps: Fps,
    /// The mapped span `[start, end)` in edited-clip frames. `start ==
    /// end` when every source frame of the input span was dropped.
    pub span: (u64, u64),
}

/// An ordered sequence of edits applied left to right.
#[derive(Debug, Clone, Default)]
pub struct EditPipeline {
    edits: Vec<Edit>,
}

impl EditPipeline {
    /// An empty pipeline (identity).
    pub fn new() -> EditPipeline {
        EditPipeline { edits: Vec::new() }
    }

    /// Append an edit.
    pub fn then(mut self, edit: Edit) -> EditPipeline {
        self.edits.push(edit);
        self
    }

    /// The edits in application order.
    pub fn edits(&self) -> &[Edit] {
        &self.edits
    }

    /// Apply all edits in order.
    pub fn apply(&self, clip: &Clip) -> Clip {
        let mut cur = clip.clone();
        for e in &self.edits {
            cur = e.apply(&cur);
        }
        cur
    }

    /// Fold an input-frame span through every edit's timeline (see
    /// [`Edit::map_span`]): where the span's content lands in the final
    /// clip, plus that clip's length and frame rate. Ground truth for an
    /// attacked insertion is `stream_start + span` of the result.
    pub fn map_span(&self, in_len: usize, fps: Fps, span: (u64, u64)) -> SpanMap {
        let mut len = in_len;
        let mut cur_fps = fps;
        let mut cur = span;
        for e in &self.edits {
            cur = e.map_span(len, cur_fps, cur);
            len = e.output_len(len, cur_fps);
            cur_fps = e.output_fps(cur_fps);
        }
        SpanMap { len, fps: cur_fps, span: cur }
    }

    /// The PAL-equivalent frame rate for a source at `fps`: scaled by the
    /// paper's NTSC→PAL ratio `25 / 29.97` so that scaled-down simulation
    /// rates keep the same temporal compression as a real 29.97 → 25 fps
    /// re-encode.
    pub fn pal_equivalent(fps: Fps) -> Fps {
        // 25 / (30000/1001) = 25025/30000 = 1001/1200.
        Fps { num: fps.num * 1001, den: fps.den * 1200 }
    }

    /// The paper's `VS2` edit suite with parameters drawn from the published
    /// ranges: 20–50 % brightness/color alteration, additive noise,
    /// resolution change to PAL geometry (scaled by the clip's own scale),
    /// 29.97 → 25 fps re-sampling (scaled via
    /// [`EditPipeline::pal_equivalent`]), and segment re-ordering.
    ///
    /// `seed` controls all random draws; `reorder_segments` controls how
    /// aggressively the temporal order is destroyed (the paper reorders at
    /// the "shot or even frame" level — 4–10 segments per clip is typical
    /// for 30–300 s clips).
    pub fn vs2_standard(
        seed: u64,
        clip_width: u32,
        clip_height: u32,
        clip_fps: Fps,
        reorder_segments: usize,
    ) -> EditPipeline {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_ed17);
        let alter: f64 = rng.gen_range(0.20..=0.50);
        // Randomly brighten or darken. Darkening uses the full 20-50 %
        // range; brightening combines a mild gain with a 20-50 %-of-mid-gray
        // offset, so the edit stays a (near-)affine map on the visible
        // range — a hard-clipped gain is not invertible by the paper's
        // Eq. 1 normalization for *any* feature scheme, and the paper's
        // real-video edits likewise keep highlights unsaturated (see
        // DESIGN.md substitution notes).
        let (gain, offset) = if rng.gen_bool(0.5) {
            (1.0 + alter.min(0.15), alter * 25.0)
        } else {
            (1.0 - alter, -rng.gen_range(5.0..15.0))
        };
        // PAL has 288 lines vs NTSC's 240: scale height by 1.2, keep width.
        let pal_h = ((clip_height as f64) * 288.0 / 240.0).round() as u32;
        EditPipeline::new()
            .then(Edit::GainOffset { gain, offset })
            .then(Edit::Noise { sigma: rng.gen_range(1.0..3.0), seed: seed ^ 0xabcd })
            .then(Edit::Resize { width: clip_width, height: pal_h })
            .then(Edit::ResampleFps { target: Self::pal_equivalent(clip_fps) })
            .then(Edit::SegmentReorder { segments: reorder_segments, seed: seed ^ 0x0def })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{ClipGenerator, SourceSpec};

    fn test_clip(seed: u64) -> Clip {
        let spec = SourceSpec {
            width: 48,
            height: 32,
            fps: Fps::integer(10),
            seed,
            min_scene_s: 1.0,
            max_scene_s: 2.0,
            motifs: None,
        };
        ClipGenerator::new(spec).clip(4.0)
    }

    #[test]
    fn gain_offset_scales_mean() {
        let c = test_clip(1);
        let edited = Edit::GainOffset { gain: 1.2, offset: 5.0 }.apply(&c);
        let m0 = c.frames()[0].mean();
        let m1 = edited.frames()[0].mean();
        // Allow clipping slack.
        assert!((m1 - (m0 * 1.2 + 5.0)).abs() < 6.0, "mean {m0} -> {m1}");
    }

    #[test]
    fn noise_perturbs_but_preserves_mean() {
        let c = test_clip(2);
        let edited = Edit::Noise { sigma: 2.0, seed: 9 }.apply(&c);
        let diff = c.frames()[0].mean_abs_diff(&edited.frames()[0]);
        assert!(diff > 0.5 && diff < 5.0, "noise diff {diff}");
        assert!((c.frames()[0].mean() - edited.frames()[0].mean()).abs() < 1.0);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let c = test_clip(2);
        let a = Edit::Noise { sigma: 2.0, seed: 9 }.apply(&c);
        let b = Edit::Noise { sigma: 2.0, seed: 9 }.apply(&c);
        assert_eq!(a.frames(), b.frames());
    }

    #[test]
    fn resample_fps_changes_length_proportionally() {
        let c = test_clip(3); // 40 frames @10fps = 4 s
        let edited = Edit::ResampleFps { target: Fps::integer(5) }.apply(&c);
        assert_eq!(edited.len(), 20);
        assert_eq!(edited.fps(), Fps::integer(5));
        assert!((edited.duration() - c.duration()).abs() < 0.2);
    }

    #[test]
    fn segment_reorder_preserves_multiset_of_frames() {
        let c = test_clip(4);
        let edited = Edit::SegmentReorder { segments: 5, seed: 11 }.apply(&c);
        assert_eq!(edited.len(), c.len());
        assert_ne!(edited.frames(), c.frames(), "reorder must not be identity");
        // Same frames as a multiset: compare sorted sample sums.
        let mut a: Vec<u64> = c
            .frames()
            .iter()
            .map(|f| f.samples().iter().map(|&v| u64::from(v)).sum())
            .collect();
        let mut b: Vec<u64> = edited
            .frames()
            .iter()
            .map(|f| f.samples().iter().map(|&v| u64::from(v)).sum())
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn vs2_pipeline_runs_and_changes_geometry() {
        let c = test_clip(5);
        let pipe = EditPipeline::vs2_standard(42, c.width(), c.height(), c.fps(), 4);
        let edited = pipe.apply(&c);
        assert_eq!(edited.fps(), EditPipeline::pal_equivalent(c.fps()));
        // The PAL-equivalent of 10 fps is ~8.34 fps: fewer frames, same
        // duration, like a real 29.97 -> 25 re-encode.
        assert!(edited.len() < c.len());
        assert!((edited.duration() - c.duration()).abs() < 0.5);
        assert_eq!(edited.width(), c.width());
        assert!(edited.height() > c.height(), "PAL re-encode must add lines");
    }

    #[test]
    fn pipeline_order_matters_and_identity_is_noop() {
        let c = test_clip(6);
        let id = EditPipeline::new().apply(&c);
        assert_eq!(id.frames(), c.frames());
    }

    #[test]
    fn speed_up_shortens_and_slow_down_lengthens() {
        let c = test_clip(7); // 40 frames
        let fast = Edit::Speed { num: 2, den: 1 }.apply(&c);
        assert_eq!(fast.len(), 20);
        assert_eq!(fast.fps(), c.fps(), "speed change keeps the frame rate");
        let slow = Edit::Speed { num: 2, den: 3 }.apply(&c);
        assert_eq!(slow.len(), 60);
        // 1.5× slow-down repeats frames but invents none.
        assert!(slow.frames().iter().all(|f| c.frames().contains(f)));
    }

    #[test]
    fn speed_apply_length_matches_output_len_and_map_span() {
        let c = test_clip(8);
        for (num, den) in [(2u32, 1u32), (3, 2), (1, 2), (5, 4)] {
            let e = Edit::Speed { num, den };
            let out = e.apply(&c);
            assert_eq!(out.len(), e.output_len(c.len(), c.fps()), "{num}/{den}");
            let (a, b) = e.map_span(c.len(), c.fps(), (0, c.len() as u64));
            assert_eq!((a, b), (0, out.len() as u64), "full span maps to full output");
        }
    }

    #[test]
    fn drop_periodic_removes_expected_fraction() {
        let c = test_clip(9); // 40 frames
        let e = Edit::DropPeriodic { period: 5, drop: 1 };
        let out = e.apply(&c);
        assert_eq!(out.len(), 32); // 40 · 4/5
        assert_eq!(out.len(), e.output_len(c.len(), c.fps()));
        // Kept frames appear in original order.
        assert_eq!(out.frames()[0], c.frames()[1]);
        assert_eq!(out.frames()[3], c.frames()[4]);
        assert_eq!(out.frames()[4], c.frames()[6]);
    }

    #[test]
    fn drop_bursty_is_deterministic_and_time_warps() {
        let c = test_clip(10);
        let e = Edit::DropBursty { rate: 0.1, burst: 3, seed: 42 };
        let a = e.apply(&c);
        let b = e.apply(&c);
        assert_eq!(a.frames(), b.frames());
        assert!(a.len() < c.len(), "bursty drop must lose frames at rate 0.1");
        assert!(a.len() >= c.len() / 2, "burst=3 at 0.1 loses well under half");
        let other = Edit::DropBursty { rate: 0.1, burst: 3, seed: 43 }.apply(&c);
        assert_ne!(a.frames(), other.frames(), "different seed, different pattern");
    }

    #[test]
    fn clip_in_clip_embeds_content_at_the_lead_offset() {
        let c = test_clip(11);
        let e = Edit::ClipInClip { lead_s: 2.0, trail_s: 1.0, seed: 5 };
        let out = e.apply(&c);
        let lead = c.fps().frames_in(2.0);
        let trail = c.fps().frames_in(1.0);
        assert_eq!(out.len(), lead + c.len() + trail);
        assert_eq!(&out.frames()[lead..lead + c.len()], c.frames());
        // The distractor is foreign content, not the query.
        assert_ne!(out.frames()[0], c.frames()[0]);
        // map_span points exactly at the embedded content.
        let (a, b) = e.map_span(c.len(), c.fps(), (0, c.len() as u64));
        assert_eq!((a, b), (lead as u64, (lead + c.len()) as u64));
    }

    #[test]
    fn crop_and_letterbox_keep_geometry_and_timeline() {
        let c = test_clip(12);
        let cropped = Edit::Crop { keep_w: 0.8, keep_h: 0.8 }.apply(&c);
        assert_eq!((cropped.width(), cropped.height()), (c.width(), c.height()));
        assert_eq!(cropped.len(), c.len());
        assert_ne!(cropped.frames()[0], c.frames()[0]);

        let boxed = Edit::Letterbox { bar_x: 0.0, bar_y: 0.15 }.apply(&c);
        assert_eq!((boxed.width(), boxed.height()), (c.width(), c.height()));
        // Top row is a bar; the center still carries content.
        assert!(boxed.frames()[0].row(0).iter().all(|&v| v == 16));
        let mid = boxed.height() / 2;
        assert!(boxed.frames()[0].row(mid).iter().any(|&v| v != 16));
        // Pixel-domain edits leave spans alone.
        let e = Edit::Letterbox { bar_x: 0.0, bar_y: 0.15 };
        assert_eq!(e.map_span(c.len(), c.fps(), (3, 17)), (3, 17));
    }

    #[test]
    fn segment_reorder_map_span_is_the_hull_of_the_scattered_content() {
        let c = test_clip(13);
        let e = Edit::SegmentReorder { segments: 5, seed: 11 };
        // The whole clip maps onto the whole clip.
        assert_eq!(e.map_span(c.len(), c.fps(), (0, c.len() as u64)), (0, c.len() as u64));
        // A sub-span maps to a hull that contains at least its own length.
        let (a, b) = e.map_span(c.len(), c.fps(), (8, 16));
        assert!(b - a >= 8, "hull {a}..{b} must cover the 8 content frames");
    }

    #[test]
    fn map_span_empty_when_all_sources_dropped() {
        let c = test_clip(14); // 40 frames
        // period 2, drop 1 keeps odd frames; span {2} (only frame 2) dies.
        let e = Edit::DropPeriodic { period: 2, drop: 1 };
        assert_eq!(e.map_span(c.len(), c.fps(), (2, 3)), (0, 0));
        // An odd frame survives.
        let (a, b) = e.map_span(c.len(), c.fps(), (3, 4));
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn pipeline_map_span_folds_time_warps() {
        let c = test_clip(15); // 40 frames @ 10 fps
        let pipe = EditPipeline::new()
            .then(Edit::GainOffset { gain: 1.1, offset: 2.0 })
            .then(Edit::Speed { num: 2, den: 1 })
            .then(Edit::ClipInClip { lead_s: 1.0, trail_s: 1.0, seed: 3 });
        let m = pipe.map_span(c.len(), c.fps(), (0, c.len() as u64));
        let out = pipe.apply(&c);
        assert_eq!(m.len, out.len());
        assert_eq!(m.fps, out.fps());
        // 40 frames → 20 after 2× speed-up → embedded after a 10-frame lead.
        assert_eq!(m.span, (10, 30));
        // The mapped span frames are exactly the sped-up content.
        let fast = Edit::Speed { num: 2, den: 1 }
            .apply(&Edit::GainOffset { gain: 1.1, offset: 2.0 }.apply(&c));
        assert_eq!(
            &out.frames()[m.span.0 as usize..m.span.1 as usize],
            fast.frames()
        );
    }

    #[test]
    fn resample_fps_map_span_tracks_apply() {
        let c = test_clip(16);
        let e = Edit::ResampleFps { target: Fps::integer(5) };
        let out = e.apply(&c);
        let m = e.map_span(c.len(), c.fps(), (0, c.len() as u64));
        assert_eq!(m, (0, out.len() as u64));
        assert_eq!(e.output_fps(c.fps()), Fps::integer(5));
        assert_eq!(e.output_len(c.len(), c.fps()), out.len());
    }
}
